// Package obs is whirlpool's dependency-free observability layer: spans
// with trace/parent links for cross-node sweep tracing, a bounded
// in-memory ring of finished spans, an optional JSONL sink, W3C
// traceparent propagation, and a slog handler that keeps the daemon's
// traditional "prefix: message key=val" output shape.
//
// The layer is built to be free on the hot path: spans are pooled,
// attributes live in a fixed-size array inside the span, and finishing
// a span copies it by value into a preallocated ring. Emitting a span
// with a handful of attributes performs zero heap allocations, and
// every method on a nil *Tracer or nil *Span is a safe no-op, so
// callers thread tracers through without guarding call sites.
package obs

import (
	"context"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end operation (e.g. a sweep job across
// the fleet). Zero means "absent".
type TraceID [16]byte

// SpanID identifies one span within a trace. Zero means "absent".
type SpanID [8]byte

const hexDigits = "0123456789abcdef"

//whirl:zeroalloc
func appendHex(dst []byte, src []byte) []byte {
	for _, b := range src {
		dst = append(dst, hexDigits[b>>4], hexDigits[b&0xf])
	}
	return dst
}

// String renders the trace ID as 32 lowercase hex digits.
func (t TraceID) String() string {
	var buf [32]byte
	appendHex(buf[:0], t[:])
	return string(buf[:])
}

// IsZero reports whether the trace ID is absent.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the span ID as 16 lowercase hex digits.
func (s SpanID) String() string {
	var buf [16]byte
	appendHex(buf[:0], s[:])
	return string(buf[:])
}

// IsZero reports whether the span ID is absent.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// newTraceID returns a random non-zero trace ID. math/rand/v2's global
// generator is allocation-free and per-CPU sharded; span IDs need
// uniqueness, not unpredictability.
func newTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		a, b := rand.Uint64(), rand.Uint64()
		putU64(t[:8], a)
		putU64(t[8:], b)
	}
	return t
}

func newSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		putU64(s[:], rand.Uint64())
	}
	return s
}

func putU64(dst []byte, v uint64) {
	_ = dst[7]
	dst[0] = byte(v >> 56)
	dst[1] = byte(v >> 48)
	dst[2] = byte(v >> 40)
	dst[3] = byte(v >> 32)
	dst[4] = byte(v >> 24)
	dst[5] = byte(v >> 16)
	dst[6] = byte(v >> 8)
	dst[7] = byte(v)
}

// SpanContext is the propagated identity of a span: enough to parent a
// child anywhere in the fleet, and exactly what a traceparent header
// carries.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool { return !sc.Trace.IsZero() && !sc.Span.IsZero() }

type ctxKey struct{}

// NewContext returns ctx carrying sc, for cross-layer (and, via
// traceparent injection, cross-node) propagation.
func NewContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext extracts the span context placed by NewContext, if any.
func FromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(ctxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}

// attrKind discriminates the typed attribute payload.
type attrKind uint8

const (
	attrNone attrKind = iota
	attrStr
	attrInt
	attrBool
)

// Attr is one typed key/value pair on a span. Values are stored
// unboxed so setting an attribute never allocates.
type Attr struct {
	Key  string
	kind attrKind
	str  string
	num  int64
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, kind: attrStr, str: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, kind: attrInt, num: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr {
	n := int64(0)
	if v {
		n = 1
	}
	return Attr{Key: k, kind: attrBool, num: n}
}

// IsStr reports whether the attribute holds a string, returning it.
func (a Attr) IsStr() (string, bool) { return a.str, a.kind == attrStr }

// IsInt reports whether the attribute holds an integer, returning it.
func (a Attr) IsInt() (int64, bool) { return a.num, a.kind == attrInt }

// IsBool reports whether the attribute holds a bool, returning it.
func (a Attr) IsBool() (bool, bool) { return a.num != 0, a.kind == attrBool }

// Value returns the attribute's payload as an any (allocates; use the
// typed accessors on hot paths).
func (a Attr) Value() any {
	switch a.kind {
	case attrStr:
		return a.str
	case attrInt:
		return a.num
	case attrBool:
		return a.num != 0
	}
	return nil
}

// maxAttrs bounds per-span attributes so spans stay fixed-size and
// pool-friendly. Extra Set calls beyond the cap are dropped.
const maxAttrs = 8

// Span is one timed operation. Start carries Go's monotonic clock
// reading, so Dur is immune to wall-clock steps; StartWall (unix
// microseconds) is what serializes, for cross-node alignment.
type Span struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID
	Name   string
	Start  time.Time
	Dur    time.Duration

	nattrs int
	attrs  [maxAttrs]Attr
	tracer *Tracer
}

// Context returns the span's propagatable identity.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.Trace, Span: s.ID}
}

// Set appends a typed attribute, dropping it if the span is nil or the
// fixed attribute array is full. Returns s for chaining.
//
//whirl:zeroalloc
func (s *Span) Set(a Attr) *Span {
	if s == nil || s.nattrs >= maxAttrs {
		return s
	}
	s.attrs[s.nattrs] = a
	s.nattrs++
	return s
}

// SetStr, SetInt, SetBool are convenience wrappers over Set.
func (s *Span) SetStr(k, v string) *Span       { return s.Set(Str(k, v)) }
func (s *Span) SetInt(k string, v int64) *Span { return s.Set(Int(k, v)) }
func (s *Span) SetBool(k string, v bool) *Span { return s.Set(Bool(k, v)) }

// Attrs returns the span's attributes (a view into the span; do not
// retain past the span's End).
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	return s.attrs[:s.nattrs]
}

// Attr looks up an attribute by key.
func (s *Span) Attr(key string) (Attr, bool) {
	if s == nil {
		return Attr{}, false
	}
	for i := 0; i < s.nattrs; i++ {
		if s.attrs[i].Key == key {
			return s.attrs[i], true
		}
	}
	return Attr{}, false
}

// End finishes the span with the current time and records it into the
// tracer's ring (and sink, if one is set). The span is recycled: the
// caller must not touch it after End.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.EndDuration(time.Since(s.Start))
}

// EndDuration finishes the span with an explicit duration, for callers
// that already computed time.Since for their own bookkeeping.
//
//whirl:zeroalloc
func (s *Span) EndDuration(d time.Duration) {
	if s == nil {
		return
	}
	s.Dur = d
	t := s.tracer
	s.tracer = nil
	if t != nil {
		t.record(s)
	}
}

// Tracer collects finished spans in a bounded ring, newest overwriting
// oldest, and optionally mirrors them to a JSONL sink. The zero value
// is not usable; use New. A nil *Tracer is a valid no-op tracer.
type Tracer struct {
	total atomic.Uint64 // spans finished over the tracer's lifetime

	mu   sync.Mutex
	ring []Span
	next int  // next write index in ring
	full bool // ring has wrapped at least once

	pool sync.Pool

	sinkMu  sync.Mutex
	sink    interface{ Write([]byte) (int, error) }
	sinkBuf []byte
}

// DefaultRingSize is the span capacity used when New is given n <= 0:
// enough for several full sweeps of every builtin app x scheme.
const DefaultRingSize = 8192

// New returns a Tracer retaining the last n finished spans.
func New(n int) *Tracer {
	if n <= 0 {
		n = DefaultRingSize
	}
	t := &Tracer{ring: make([]Span, n)}
	t.pool.New = func() any { return new(Span) }
	return t
}

// SetSink mirrors every finished span to w as one JSON line. Writes
// are serialized by the tracer; w need not be concurrency-safe.
func (t *Tracer) SetSink(w interface{ Write([]byte) (int, error) }) {
	if t == nil {
		return
	}
	t.sinkMu.Lock()
	t.sink = w
	t.sinkMu.Unlock()
}

// Total returns the number of spans finished over the tracer's
// lifetime (including spans since evicted from the ring).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total.Load()
}

// Start begins a span. A valid parent puts the span in the parent's
// trace; an invalid one starts a fresh trace with this span as root.
// The returned span comes from a pool — finish it with End exactly
// once, and do not retain it afterwards.
//
//whirl:zeroalloc
func (t *Tracer) Start(parent SpanContext, name string) *Span {
	if t == nil {
		return nil
	}
	s := t.pool.Get().(*Span)
	if parent.Valid() {
		s.Trace = parent.Trace
		s.Parent = parent.Span
	} else {
		s.Trace = newTraceID()
		s.Parent = SpanID{}
	}
	s.ID = newSpanID()
	s.Name = name
	s.Start = time.Now()
	s.Dur = 0
	s.nattrs = 0
	s.tracer = t
	return s
}

// record copies the finished span into the ring and returns it to the
// pool. Called from EndDuration.
//
//whirl:zeroalloc
func (t *Tracer) record(s *Span) {
	t.total.Add(1)
	t.mu.Lock()
	t.ring[t.next] = *s
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()

	t.sinkMu.Lock()
	if w := t.sink; w != nil {
		t.sinkBuf = appendSpanJSON(t.sinkBuf[:0], s)
		t.sinkBuf = append(t.sinkBuf, '\n')
		w.Write(t.sinkBuf)
	}
	t.sinkMu.Unlock()

	s.Name = ""
	s.nattrs = 0
	t.pool.Put(s)
}

// Emit records an externally built span (e.g. one parsed from a
// worker's trace JSONL) directly into the ring. The span is copied.
func (t *Tracer) Emit(s Span) {
	if t == nil {
		return
	}
	s.tracer = nil
	t.total.Add(1)
	t.mu.Lock()
	t.ring[t.next] = s
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Collect returns copies of every retained span of the given trace,
// sorted by start time (ties broken by name for determinism).
func (t *Tracer) Collect(trace TraceID) []Span {
	if t == nil || trace.IsZero() {
		return nil
	}
	t.mu.Lock()
	n := t.next
	if t.full {
		n = len(t.ring)
	}
	var out []Span
	for i := 0; i < n; i++ {
		if t.ring[i].Trace == trace {
			out = append(out, t.ring[i])
		}
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].Name < out[j].Name
	})
	return out
}
