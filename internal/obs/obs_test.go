package obs

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

func TestIDs(t *testing.T) {
	tr := newTraceID()
	if tr.IsZero() {
		t.Fatal("zero trace id")
	}
	if got := len(tr.String()); got != 32 {
		t.Fatalf("trace id hex length = %d, want 32", got)
	}
	sp := newSpanID()
	if sp.IsZero() {
		t.Fatal("zero span id")
	}
	if got := len(sp.String()); got != 16 {
		t.Fatalf("span id hex length = %d, want 16", got)
	}
	if newTraceID() == newTraceID() {
		t.Fatal("trace ids collide")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: newTraceID(), Span: newSpanID()}
	h := Traceparent(sc)
	if len(h) != 55 {
		t.Fatalf("traceparent length = %d, want 55: %q", len(h), h)
	}
	got, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected own output", h)
	}
	if got != sc {
		t.Fatalf("round trip: got %+v want %+v", got, sc)
	}
}

func TestTraceparentMalformed(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if _, ok := ParseTraceparent(valid); !ok {
		t.Fatalf("canonical example rejected")
	}
	// A future version may carry extra fields after the flags.
	if _, ok := ParseTraceparent("42-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); !ok {
		t.Fatalf("future-version with suffix rejected")
	}
	bad := []string{
		"",
		"00",
		valid[:54],             // truncated
		valid + "x",            // version 00 must be exactly 55 chars
		"ff" + valid[2:],       // version ff is forbidden
		"00_" + valid[3:],      // bad separator
		strings.ToUpper(valid), // uppercase hex is invalid
		"00-" + strings.Repeat("0", 32) + "-00f067aa0ba902b7-01",                 // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-" + strings.Repeat("0", 16) + "-01", // zero span id
		"00-4bf92f3577b34da6a3ce929dXe0e4736-00f067aa0ba902b7-01",                // non-hex
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", h)
		}
	}
	if Traceparent(SpanContext{}) != "" {
		t.Fatal("invalid context rendered non-empty traceparent")
	}
}

func TestSpanTree(t *testing.T) {
	tr := New(16)
	root := tr.Start(SpanContext{}, "job")
	if root.Parent != (SpanID{}) {
		t.Fatal("root has a parent")
	}
	child := tr.Start(root.Context(), "sim.run")
	child.SetStr("app", "delaunay").SetInt("cells", 4).SetBool("mmap", true)
	if child.Trace != root.Trace {
		t.Fatal("child not in parent's trace")
	}
	if child.Parent != root.ID {
		t.Fatal("child not parented to root")
	}
	child.End()
	root.End()

	spans := tr.Collect(root.Trace)
	if len(spans) != 2 {
		t.Fatalf("Collect: %d spans, want 2", len(spans))
	}
	// Sorted by start: root first.
	if spans[0].Name != "job" || spans[1].Name != "sim.run" {
		t.Fatalf("order: %q, %q", spans[0].Name, spans[1].Name)
	}
	a, ok := spans[1].Attr("app")
	if !ok {
		t.Fatal("attr app missing")
	}
	if v, _ := a.IsStr(); v != "delaunay" {
		t.Fatalf("attr app = %q", v)
	}
	if v, ok := spans[1].Attr("mmap"); !ok {
		t.Fatal("attr mmap missing")
	} else if b, _ := v.IsBool(); !b {
		t.Fatal("attr mmap = false")
	}
	if tr.Total() != 2 {
		t.Fatalf("Total = %d, want 2", tr.Total())
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(4)
	root := tr.Start(SpanContext{}, "root")
	sc := root.Context()
	root.End()
	for i := 0; i < 10; i++ {
		tr.Start(sc, "child").End()
	}
	spans := tr.Collect(sc.Trace)
	if len(spans) != 4 {
		t.Fatalf("ring retained %d spans, want 4", len(spans))
	}
	if tr.Total() != 11 {
		t.Fatalf("Total = %d, want 11", tr.Total())
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	s := tr.Start(SpanContext{}, "x")
	if s != nil {
		t.Fatal("nil tracer returned a span")
	}
	s.SetStr("k", "v").SetInt("n", 1).SetBool("b", true)
	s.End()
	s.EndDuration(time.Second)
	if s.Context().Valid() {
		t.Fatal("nil span has valid context")
	}
	tr.Emit(Span{})
	tr.SetSink(&bytes.Buffer{})
	if tr.Collect(newTraceID()) != nil || tr.Total() != 0 {
		t.Fatal("nil tracer retained spans")
	}
}

func TestAttrOverflowDropped(t *testing.T) {
	tr := New(4)
	s := tr.Start(SpanContext{}, "x")
	for i := 0; i < maxAttrs+3; i++ {
		s.SetInt("k", int64(i))
	}
	if len(s.Attrs()) != maxAttrs {
		t.Fatalf("attrs = %d, want cap %d", len(s.Attrs()), maxAttrs)
	}
	s.End()
}

func TestJSONRoundTrip(t *testing.T) {
	tr := New(8)
	var sink bytes.Buffer
	tr.SetSink(&sink)
	root := tr.Start(SpanContext{}, "job")
	child := tr.Start(root.Context(), `sim "run"`)
	child.SetStr("app", "delaunay").SetInt("cells", 42).SetBool("mmap", false)
	child.End()
	root.End()

	spans, err := ParseSpans(&sink)
	if err != nil {
		t.Fatalf("ParseSpans: %v", err)
	}
	if len(spans) != 2 {
		t.Fatalf("parsed %d spans, want 2", len(spans))
	}
	// Sink order is End order: child first.
	got := spans[0]
	if got.Name != `sim "run"` {
		t.Fatalf("name = %q", got.Name)
	}
	if got.Trace != root.Trace {
		// root was recycled; compare against the collected copy instead
	}
	if got.Parent != spans[1].ID {
		t.Fatalf("parent link lost in round trip")
	}
	if v, ok := got.Attr("cells"); !ok {
		t.Fatal("cells attr missing")
	} else if n, _ := v.IsInt(); n != 42 {
		t.Fatalf("cells = %d", n)
	}
	if v, ok := got.Attr("mmap"); !ok {
		t.Fatal("mmap attr missing")
	} else if b, isB := v.IsBool(); !isB || b {
		t.Fatalf("mmap attr wrong: %v %v", b, isB)
	}
	if v, ok := got.Attr("app"); !ok {
		t.Fatal("app attr missing")
	} else if s, _ := v.IsStr(); s != "delaunay" {
		t.Fatalf("app = %q", s)
	}
	if spans[1].Parent != (SpanID{}) {
		t.Fatal("root grew a parent")
	}
}

func TestParseSpansRejectsGarbage(t *testing.T) {
	if _, err := ParseSpans(strings.NewReader("{\"trace\":\"zz\"}\n")); err == nil {
		t.Fatal("bad trace id accepted")
	}
	if _, err := ParseSpans(strings.NewReader("not json\n")); err == nil {
		t.Fatal("non-JSON accepted")
	}
	spans, err := ParseSpans(strings.NewReader("\n  \n"))
	if err != nil || len(spans) != 0 {
		t.Fatalf("blank input: %v, %d spans", err, len(spans))
	}
}

func TestEmitStitch(t *testing.T) {
	tr := New(8)
	root := tr.Start(SpanContext{}, "job")
	rootSC := root.Context()
	root.End()

	// A remote worker's span arrives pre-built (parsed from JSONL).
	remote := Span{
		Trace:  rootSC.Trace,
		ID:     newSpanID(),
		Parent: rootSC.Span,
		Name:   "sweep.cell",
		Start:  time.Now(),
		Dur:    time.Millisecond,
	}
	tr.Emit(remote)
	spans := tr.Collect(rootSC.Trace)
	if len(spans) != 2 {
		t.Fatalf("stitched trace has %d spans, want 2", len(spans))
	}
	if spans[1].Parent != rootSC.Span {
		t.Fatal("stitched span lost its parent link")
	}
}

// TestSpanEmitZeroAlloc is the alloc guard behind the sweep hot loop
// budget: starting, attributing and ending a span must not allocate
// once the pool is warm.
func TestSpanEmitZeroAlloc(t *testing.T) {
	tr := New(128)
	parent := SpanContext{Trace: newTraceID(), Span: newSpanID()}
	emit := func() {
		s := tr.Start(parent, "sim.run")
		s.SetStr("app", "delaunay")
		s.SetStr("scheme", "whirlpool")
		s.SetInt("cells", 1)
		s.End()
	}
	emit() // warm the pool
	if avg := testing.AllocsPerRun(200, emit); avg != 0 {
		t.Fatalf("span emit allocates %v per run, want 0", avg)
	}
}

func TestLoggerShape(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, "whirld")
	log.Info("listening", "addr", "127.0.0.1:9090")
	if got := buf.String(); got != "whirld: listening addr=127.0.0.1:9090\n" {
		t.Fatalf("line = %q", got)
	}
	buf.Reset()
	log.Warn("lease expired", "worker", "w1", "epoch", 3)
	if got := buf.String(); got != "whirld: warning: lease expired worker=w1 epoch=3\n" {
		t.Fatalf("line = %q", got)
	}
	buf.Reset()
	log.Error("boom", "err", "it broke badly")
	if got := buf.String(); got != "whirld: error: boom err=\"it broke badly\"\n" {
		t.Fatalf("line = %q", got)
	}
	buf.Reset()
	log.Debug("hidden")
	if buf.Len() != 0 {
		t.Fatalf("debug leaked: %q", buf.String())
	}
	buf.Reset()
	log.With("job", "j1").WithGroup("fleet").Info("msg", "worker", "w2")
	if got := buf.String(); got != "whirld: msg job=j1 fleet.worker=w2\n" {
		t.Fatalf("with/group line = %q", got)
	}
}

func TestContextRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: newTraceID(), Span: newSpanID()}
	ctx := NewContext(context.Background(), sc)
	got, ok := FromContext(ctx)
	if !ok || got != sc {
		t.Fatalf("FromContext = %+v, %v", got, ok)
	}
	if _, ok := FromContext(context.Background()); ok {
		t.Fatal("empty context yielded a span context")
	}
}

func BenchmarkSpanEmit(b *testing.B) {
	tr := New(DefaultRingSize)
	parent := SpanContext{Trace: newTraceID(), Span: newSpanID()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.Start(parent, "sim.run")
		s.SetStr("app", "delaunay")
		s.SetStr("scheme", "whirlpool")
		s.SetInt("cells", 1)
		s.End()
	}
}

func BenchmarkSpanJSON(b *testing.B) {
	tr := New(8)
	s := tr.Start(SpanContext{}, "sim.run")
	s.SetStr("app", "delaunay").SetInt("cells", 4).SetBool("mmap", true)
	s.Dur = 123 * time.Microsecond
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = appendSpanJSON(buf[:0], s)
	}
}
