package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
)

// NewLogger returns a *slog.Logger whose handler writes the daemon's
// traditional line shape —
//
//	prefix: message key=val key=val
//
// — so scripts that grep "whirld: …" keep working while call sites
// gain structured job/worker/epoch/trace fields. Records at Info and
// above are emitted; Debug is dropped.
func NewLogger(w io.Writer, prefix string) *slog.Logger {
	return slog.New(&lineHandler{w: w, prefix: prefix, mu: &sync.Mutex{}})
}

type lineHandler struct {
	mu     *sync.Mutex
	w      io.Writer
	prefix string
	attrs  []slog.Attr // pre-bound via With(...)
	group  string      // dotted key prefix from WithGroup
}

func (h *lineHandler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= slog.LevelInfo
}

func (h *lineHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	if h.prefix != "" {
		b.WriteString(h.prefix)
		b.WriteString(": ")
	}
	if r.Level >= slog.LevelError {
		b.WriteString("error: ")
	} else if r.Level >= slog.LevelWarn {
		b.WriteString("warning: ")
	}
	b.WriteString(r.Message)
	for _, a := range h.attrs {
		writeAttr(&b, "", a) // group already folded into keys by WithAttrs
	}
	r.Attrs(func(a slog.Attr) bool {
		writeAttr(&b, h.group, a)
		return true
	})
	b.WriteByte('\n')
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err := io.WriteString(h.w, b.String())
	return err
}

func writeAttr(b *strings.Builder, group string, a slog.Attr) {
	if a.Equal(slog.Attr{}) {
		return
	}
	if a.Value.Kind() == slog.KindGroup {
		g := a.Key
		if group != "" {
			g = group + "." + g
		}
		for _, ga := range a.Value.Group() {
			writeAttr(b, g, ga)
		}
		return
	}
	b.WriteByte(' ')
	if group != "" {
		b.WriteString(group)
		b.WriteByte('.')
	}
	b.WriteString(a.Key)
	b.WriteByte('=')
	v := a.Value.Resolve().String()
	if v == "" || strings.ContainsAny(v, " \t\n\"") {
		fmt.Fprintf(b, "%q", v)
	} else {
		b.WriteString(v)
	}
}

func (h *lineHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	if len(attrs) == 0 {
		return h
	}
	nh := *h
	nh.attrs = make([]slog.Attr, 0, len(h.attrs)+len(attrs))
	nh.attrs = append(nh.attrs, h.attrs...)
	for _, a := range attrs {
		if h.group != "" {
			a.Key = h.group + "." + a.Key
		}
		nh.attrs = append(nh.attrs, a)
	}
	return &nh
}

func (h *lineHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	nh := *h
	if h.group != "" {
		nh.group = h.group + "." + name
	} else {
		nh.group = name
	}
	return &nh
}
