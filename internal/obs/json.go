package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// One span, one JSON line. This is the wire format of the JSONL sink,
// of GET /v1/jobs/{id}/trace, and of the coordinator<-worker stitch:
//
//	{"trace":"…32hex…","span":"…16hex…","parent":"…16hex…",
//	 "name":"sim.run","start_us":1712345678901234,"dur_us":1234,
//	 "attrs":{"app":"delaunay","mmap":true}}
//
// start_us is wall-clock unix microseconds (cross-node alignable);
// dur_us is the monotonic duration in microseconds. "parent" is
// omitted on root spans. Encoding is hand-rolled append-style so the
// sink path stays reflection- and allocation-free.

// AppendSpanJSON appends the one-line JSON encoding of s (no trailing
// newline) to dst and returns it.
//
//whirl:zeroalloc
func AppendSpanJSON(dst []byte, s *Span) []byte { return appendSpanJSON(dst, s) }

//whirl:zeroalloc
func appendSpanJSON(dst []byte, s *Span) []byte {
	dst = append(dst, `{"trace":"`...)
	dst = appendHex(dst, s.Trace[:])
	dst = append(dst, `","span":"`...)
	dst = appendHex(dst, s.ID[:])
	if !s.Parent.IsZero() {
		dst = append(dst, `","parent":"`...)
		dst = appendHex(dst, s.Parent[:])
	}
	dst = append(dst, `","name":`...)
	dst = appendJSONString(dst, s.Name)
	dst = append(dst, `,"start_us":`...)
	dst = strconv.AppendInt(dst, s.Start.UnixMicro(), 10)
	dst = append(dst, `,"dur_us":`...)
	dst = strconv.AppendInt(dst, s.Dur.Microseconds(), 10)
	if s.nattrs > 0 {
		dst = append(dst, `,"attrs":{`...)
		for i := 0; i < s.nattrs; i++ {
			if i > 0 {
				dst = append(dst, ',')
			}
			a := &s.attrs[i]
			dst = appendJSONString(dst, a.Key)
			dst = append(dst, ':')
			switch a.kind {
			case attrStr:
				dst = appendJSONString(dst, a.str)
			case attrInt:
				dst = strconv.AppendInt(dst, a.num, 10)
			case attrBool:
				if a.num != 0 {
					dst = append(dst, "true"...)
				} else {
					dst = append(dst, "false"...)
				}
			default:
				dst = append(dst, "null"...)
			}
		}
		dst = append(dst, '}')
	}
	return append(dst, '}')
}

// appendJSONString writes a quoted JSON string. Span names and attr
// keys are plain ASCII in practice; the escape path handles the rest.
//
//whirl:zeroalloc
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			dst = append(dst, '\\', c)
		case c >= 0x20:
			dst = append(dst, c)
		default:
			dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		}
	}
	return append(dst, '"')
}

// spanJSON is the decode-side shape; decoding uses encoding/json (the
// stitch and tooling paths are cold).
type spanJSON struct {
	Trace   string         `json:"trace"`
	Span    string         `json:"span"`
	Parent  string         `json:"parent"`
	Name    string         `json:"name"`
	StartUS int64          `json:"start_us"`
	DurUS   int64          `json:"dur_us"`
	Attrs   map[string]any `json:"attrs"`
}

func hexDecode(dst, src []byte) bool {
	if len(src) != 2*len(dst) {
		return false
	}
	for i := range dst {
		b, ok := hexByte(src[2*i], src[2*i+1])
		if !ok {
			return false
		}
		dst[i] = b
	}
	return true
}

// ParseSpan decodes one JSON line produced by AppendSpanJSON.
func ParseSpan(line []byte) (Span, error) {
	var raw spanJSON
	if err := json.Unmarshal(line, &raw); err != nil {
		return Span{}, err
	}
	var s Span
	if !hexDecode(s.Trace[:], []byte(raw.Trace)) {
		return Span{}, fmt.Errorf("bad trace id %q", raw.Trace)
	}
	if !hexDecode(s.ID[:], []byte(raw.Span)) {
		return Span{}, fmt.Errorf("bad span id %q", raw.Span)
	}
	if raw.Parent != "" {
		if !hexDecode(s.Parent[:], []byte(raw.Parent)) {
			return Span{}, fmt.Errorf("bad parent id %q", raw.Parent)
		}
	}
	s.Name = raw.Name
	s.Start = time.UnixMicro(raw.StartUS)
	s.Dur = time.Duration(raw.DurUS) * time.Microsecond
	for k, v := range raw.Attrs {
		switch v := v.(type) {
		case string:
			s.Set(Str(k, v))
		case bool:
			s.Set(Bool(k, v))
		case float64:
			s.Set(Int(k, int64(v)))
		}
	}
	return s, nil
}

// ParseSpans decodes a JSONL stream of spans, skipping blank lines.
// One malformed line fails the whole parse: trace files are
// machine-written, so damage means the source is not trustworthy.
func ParseSpans(r io.Reader) ([]Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Span
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		s, err := ParseSpan(b)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
