package obs

// W3C Trace Context "traceparent" header support. The header is the
// fleet's only propagation channel: the coordinator stamps it on shard
// POSTs, workers parent their job span under it, and the stitched tree
// comes back as one trace. Format (version 00):
//
//	00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//	^^ ^^^^^^^^^^^^ trace-id (32 hex) ^^ span-id (16 hex) ^^ flags

// TraceparentHeader is the canonical header name (lowercase per spec;
// net/http canonicalizes on the wire).
const TraceparentHeader = "traceparent"

const traceparentLen = 2 + 1 + 32 + 1 + 16 + 1 + 2

// ParseTraceparent decodes a traceparent header. Malformed input —
// wrong length, bad hex, unknown version ff, all-zero IDs — returns
// ok=false, which callers treat as "start a fresh root trace".
func ParseTraceparent(h string) (SpanContext, bool) {
	if len(h) < traceparentLen {
		return SpanContext{}, false
	}
	// Future versions may append fields after the flags; accept them
	// but require a dash separator (per spec, version 00 must be
	// exactly 55 chars).
	if len(h) > traceparentLen {
		if h[:2] == "00" || h[traceparentLen] != '-' {
			return SpanContext{}, false
		}
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return SpanContext{}, false
	}
	ver, ok := hexByte(h[0], h[1])
	if !ok || ver == 0xff {
		return SpanContext{}, false
	}
	var sc SpanContext
	for i := 0; i < 16; i++ {
		b, ok := hexByte(h[3+2*i], h[4+2*i])
		if !ok {
			return SpanContext{}, false
		}
		sc.Trace[i] = b
	}
	for i := 0; i < 8; i++ {
		b, ok := hexByte(h[36+2*i], h[37+2*i])
		if !ok {
			return SpanContext{}, false
		}
		sc.Span[i] = b
	}
	if _, ok := hexByte(h[53], h[54]); !ok {
		return SpanContext{}, false
	}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// Traceparent renders sc as a version-00 traceparent value with the
// sampled flag set. Invalid contexts render as "".
func Traceparent(sc SpanContext) string {
	if !sc.Valid() {
		return ""
	}
	var buf [traceparentLen]byte
	b := append(buf[:0], '0', '0', '-')
	b = appendHex(b, sc.Trace[:])
	b = append(b, '-')
	b = appendHex(b, sc.Span[:])
	b = append(b, '-', '0', '1')
	return string(b)
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	// Uppercase hex is invalid in traceparent per spec.
	return 0, false
}

func hexByte(hi, lo byte) (byte, bool) {
	h, ok1 := hexVal(hi)
	l, ok2 := hexVal(lo)
	return h<<4 | l, ok1 && ok2
}
