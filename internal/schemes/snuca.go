// Package schemes implements the baseline LLC organizations the paper
// compares against — S-NUCA with LRU and DRRIP replacement, IdealSPD (an
// idealized private-baseline D-NUCA), and Awasthi et al.'s page-migration
// shared-baseline D-NUCA — and re-exports constructors for Jigsaw and
// Whirlpool so experiments can build all six uniformly.
package schemes

import (
	"whirlpool/internal/cache"
	"whirlpool/internal/energy"
	"whirlpool/internal/llc"
	"whirlpool/internal/noc"
	"whirlpool/internal/stats"
	"whirlpool/internal/trace"
)

// SNUCA hashes addresses evenly across all banks (the commercial static
// NUCA design of Sec 2.1): one shared cache, bank chosen by address hash.
type SNUCA struct {
	chip  *noc.Chip
	meter *energy.Meter
	arr   *cache.SetAssoc
	name  string

	Hits, Misses  uint64
	WritebacksMem uint64
}

// NewSNUCA builds an S-NUCA LLC with the given replacement policy. The
// array is modeled as one shared structure with associativity equal to the
// bank count (the per-bank 52-candidate zcaches give near-ideal
// associativity; see docs/design.md).
func NewSNUCA(chip *noc.Chip, meter *energy.Meter, repl cache.Repl) *SNUCA {
	return &SNUCA{
		chip:  chip,
		meter: meter,
		arr:   cache.NewSetAssoc(chip.TotalBytes(), chip.NBanks(), repl),
		name:  "S-NUCA-" + repl.String(),
	}
}

// Name implements llc.LLC.
func (s *SNUCA) Name() string { return s.name }

func (s *SNUCA) bank(l trace.LLCAccess) int {
	return int(stats.Hash64(uint64(l.Line)) % uint64(s.chip.NBanks()))
}

// Access implements llc.LLC.
func (s *SNUCA) Access(core int, a trace.LLCAccess) (uint64, llc.Outcome) {
	m := s.chip.Mesh
	bank := s.bank(a)
	if a.Writeback {
		s.meter.AddHops(m.CoreBankHops(core, bank))
		if s.arr.Writeback(a.Line) {
			s.meter.AddTagProbe(1)
		} else {
			s.meter.AddTagProbe(1)
			s.meter.AddDRAM(1)
			s.meter.AddHops(m.BankMemHops(bank))
			s.WritebacksMem++
		}
		return 0, llc.Miss
	}
	hops := m.CoreBankHops(core, bank)
	lat := 2*noc.HopLatency(hops) + noc.BankLatency
	s.meter.AddBank(1)
	s.meter.AddHops(hops)
	hit, ev, evicted := s.arr.Access(a.Line, a.Write)
	if hit {
		s.Hits++
		return lat, llc.Hit
	}
	s.Misses++
	memHops := m.BankMemHops(bank)
	lat += noc.MemLatency + 2*noc.HopLatency(memHops)
	s.meter.AddDRAM(1)
	s.meter.AddHops(memHops)
	if evicted && ev.Dirty {
		s.meter.AddDRAM(1)
		s.WritebacksMem++
	}
	return lat, llc.Miss
}

// Tick implements llc.LLC (S-NUCA has no runtime).
func (s *SNUCA) Tick(uint64) {}

var _ llc.LLC = (*SNUCA)(nil)
