package schemes

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"whirlpool/internal/cache"
	"whirlpool/internal/energy"
	"whirlpool/internal/jigsaw"
	"whirlpool/internal/llc"
	"whirlpool/internal/noc"
)

// Kind names a registered LLC organization by its stable lowercase
// identifier (the string used in CLI flags, spec files, and the public
// API). Kind values are ordinary strings, so schemes added at runtime
// via Register are first-class: they parse, build, and sweep exactly
// like the six built-ins.
type Kind string

// The paper's six evaluated schemes, registered at init.
const (
	KindSNUCALRU   Kind = "snuca-lru"
	KindSNUCADRRIP Kind = "snuca-drrip"
	KindIdealSPD   Kind = "idealspd"
	KindAwasthi    Kind = "awasthi"
	KindJigsaw     Kind = "jigsaw"
	KindWhirlpool  Kind = "whirlpool"
)

// Options configures scheme construction.
type Options struct {
	Chip  *noc.Chip
	Meter *energy.Meter
	// JigsawClassify is the classifier plain Jigsaw uses (thread-private
	// or process-shared VCs).
	JigsawClassify llc.Classifier
	// WhirlpoolClassify adds per-pool VCs.
	WhirlpoolClassify llc.Classifier
	// ReconfigCycles is the runtime period for Jigsaw/Whirlpool/Awasthi.
	ReconfigCycles uint64
	// Bypass controls VC bypassing (on by default in the paper's
	// evaluation; the NoBypass variants are an ablation).
	JigsawBypass    bool
	WhirlpoolBypass bool
}

// Builder constructs one LLC organization from the shared options.
type Builder func(o Options) llc.LLC

// Def describes one registered scheme.
type Def struct {
	// ID is the stable lowercase identifier (Kind).
	ID Kind
	// Label is the figure label ("Whirlpool", "DRRIP", ...).
	Label string
	// Build constructs the scheme.
	Build Builder
}

// The registry maps scheme identifiers to their definitions. Built-ins
// register at init in the paper's presentation order; external packages
// append via Register. Reads vastly outnumber writes (every sweep cell
// does a lookup), hence the RWMutex.
var (
	regMu    sync.RWMutex
	registry = map[Kind]*Def{}
	regOrder []Kind
)

// idRe keeps identifiers CLI- and spec-file-safe (comma-separated flag
// lists, JSON keys).
const idChars = "abcdefghijklmnopqrstuvwxyz0123456789-_."

// Register adds a scheme under a stable identifier. The identifier must
// be non-empty, lowercase ([a-z0-9-_.]), and not already taken; label
// defaults to the identifier when empty. Registered schemes immediately
// show up in AllKinds, ParseKind, the sweep engine, and the CLIs.
func Register(id, label string, build Builder) error {
	if id == "" {
		return fmt.Errorf("schemes: cannot register an empty identifier")
	}
	if strings.Trim(id, idChars) != "" {
		return fmt.Errorf("schemes: identifier %q must use only [a-z0-9-_.]", id)
	}
	if build == nil {
		return fmt.Errorf("schemes: scheme %q needs a builder", id)
	}
	if label == "" {
		label = id
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registry[Kind(id)]; ok {
		return fmt.Errorf("schemes: scheme %q already registered", id)
	}
	registry[Kind(id)] = &Def{ID: Kind(id), Label: label, Build: build}
	regOrder = append(regOrder, Kind(id))
	return nil
}

// MustRegister is Register for init-time use; it panics on error.
func MustRegister(id, label string, build Builder) {
	if err := Register(id, label, build); err != nil {
		panic(err)
	}
}

// Lookup returns the definition for a scheme identifier.
func Lookup(k Kind) (*Def, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	d, ok := registry[k]
	return d, ok
}

// String returns the figure label for the scheme, or the raw identifier
// if it was never registered.
func (k Kind) String() string {
	if d, ok := Lookup(k); ok {
		return d.Label
	}
	return string(k)
}

// ID returns the stable lowercase identifier used in CLI flags, spec
// files, and the public API (distinct from the figure label String()).
func (k Kind) ID() string { return string(k) }

// AllKinds lists the registered schemes in registration order: the six
// built-ins in the paper's presentation order, then any externally
// registered schemes.
func AllKinds() []Kind {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]Kind(nil), regOrder...)
}

// PaperKinds lists exactly the paper's six evaluated schemes in
// presentation order. Figure and table reproductions iterate this, not
// AllKinds, so runtime-registered schemes never alter published
// results.
func PaperKinds() []Kind {
	return []Kind{KindSNUCALRU, KindSNUCADRRIP, KindIdealSPD, KindAwasthi, KindJigsaw, KindWhirlpool}
}

// KindIDs lists every scheme identifier in registration order.
func KindIDs() []string {
	ks := AllKinds()
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = k.ID()
	}
	return out
}

// ParseKind resolves a scheme identifier (see Kind.ID) to its Kind.
func ParseKind(name string) (Kind, error) {
	if _, ok := Lookup(Kind(name)); ok {
		return Kind(name), nil
	}
	valid := KindIDs()
	sort.Strings(valid)
	return "", fmt.Errorf("schemes: unknown scheme %q (valid: %s)", name, strings.Join(valid, ", "))
}

// Build constructs the requested scheme, panicking on unregistered
// kinds (callers parse identifiers with ParseKind first; the sweep
// engine converts panics into error rows).
func Build(k Kind, o Options) llc.LLC {
	d, ok := Lookup(k)
	if !ok {
		panic(fmt.Sprintf("schemes: unknown kind %q", k))
	}
	return d.Build(o)
}

func init() {
	MustRegister(string(KindSNUCALRU), "LRU", func(o Options) llc.LLC {
		return NewSNUCA(o.Chip, o.Meter, cache.LRU)
	})
	MustRegister(string(KindSNUCADRRIP), "DRRIP", func(o Options) llc.LLC {
		return NewSNUCA(o.Chip, o.Meter, cache.DRRIP)
	})
	MustRegister(string(KindIdealSPD), "IdealSPD", func(o Options) llc.LLC {
		return NewIdealSPD(o.Chip, o.Meter)
	})
	MustRegister(string(KindAwasthi), "Awasthi", func(o Options) llc.LLC {
		return NewAwasthi(o.Chip, o.Meter, o.ReconfigCycles)
	})
	MustRegister(string(KindJigsaw), "Jigsaw", func(o Options) llc.LLC {
		return jigsaw.New(jigsaw.Config{
			Chip: o.Chip, Meter: o.Meter,
			Classify:       o.JigsawClassify,
			SchemeName:     "Jigsaw",
			BypassEnabled:  o.JigsawBypass,
			ReconfigCycles: o.ReconfigCycles,
		})
	})
	MustRegister(string(KindWhirlpool), "Whirlpool", func(o Options) llc.LLC {
		return jigsaw.New(jigsaw.Config{
			Chip: o.Chip, Meter: o.Meter,
			Classify:       o.WhirlpoolClassify,
			SchemeName:     "Whirlpool",
			BypassEnabled:  o.WhirlpoolBypass,
			ReconfigCycles: o.ReconfigCycles,
		})
	})
}
