package schemes

import (
	"fmt"
	"strings"

	"whirlpool/internal/cache"
	"whirlpool/internal/energy"
	"whirlpool/internal/jigsaw"
	"whirlpool/internal/llc"
	"whirlpool/internal/noc"
)

// Kind enumerates the six evaluated schemes.
type Kind int

// The evaluated schemes, in the order the paper's figures present them.
const (
	KindSNUCALRU Kind = iota
	KindSNUCADRRIP
	KindIdealSPD
	KindAwasthi
	KindJigsaw
	KindWhirlpool
)

// String returns the figure label for the scheme.
func (k Kind) String() string {
	switch k {
	case KindSNUCALRU:
		return "LRU"
	case KindSNUCADRRIP:
		return "DRRIP"
	case KindIdealSPD:
		return "IdealSPD"
	case KindAwasthi:
		return "Awasthi"
	case KindJigsaw:
		return "Jigsaw"
	case KindWhirlpool:
		return "Whirlpool"
	}
	return "unknown"
}

// AllKinds lists the schemes in presentation order.
func AllKinds() []Kind {
	return []Kind{KindSNUCALRU, KindSNUCADRRIP, KindIdealSPD, KindAwasthi, KindJigsaw, KindWhirlpool}
}

// ID returns the stable lowercase identifier used in CLI flags, spec
// files, and the public API (distinct from the figure label String()).
func (k Kind) ID() string {
	switch k {
	case KindSNUCALRU:
		return "snuca-lru"
	case KindSNUCADRRIP:
		return "snuca-drrip"
	case KindIdealSPD:
		return "idealspd"
	case KindAwasthi:
		return "awasthi"
	case KindJigsaw:
		return "jigsaw"
	case KindWhirlpool:
		return "whirlpool"
	}
	return "unknown"
}

// KindIDs lists every scheme identifier in presentation order.
func KindIDs() []string {
	ks := AllKinds()
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = k.ID()
	}
	return out
}

// ParseKind resolves a scheme identifier (see Kind.ID) to its Kind.
func ParseKind(name string) (Kind, error) {
	for _, k := range AllKinds() {
		if k.ID() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("schemes: unknown scheme %q (valid: %s)", name, strings.Join(KindIDs(), ", "))
}

// Options configures scheme construction.
type Options struct {
	Chip  *noc.Chip
	Meter *energy.Meter
	// JigsawClassify is the classifier plain Jigsaw uses (thread-private
	// or process-shared VCs).
	JigsawClassify llc.Classifier
	// WhirlpoolClassify adds per-pool VCs.
	WhirlpoolClassify llc.Classifier
	// ReconfigCycles is the runtime period for Jigsaw/Whirlpool/Awasthi.
	ReconfigCycles uint64
	// Bypass controls VC bypassing (on by default in the paper's
	// evaluation; the NoBypass variants are an ablation).
	JigsawBypass    bool
	WhirlpoolBypass bool
}

// Build constructs the requested scheme.
func Build(k Kind, o Options) llc.LLC {
	switch k {
	case KindSNUCALRU:
		return NewSNUCA(o.Chip, o.Meter, cache.LRU)
	case KindSNUCADRRIP:
		return NewSNUCA(o.Chip, o.Meter, cache.DRRIP)
	case KindIdealSPD:
		return NewIdealSPD(o.Chip, o.Meter)
	case KindAwasthi:
		return NewAwasthi(o.Chip, o.Meter, o.ReconfigCycles)
	case KindJigsaw:
		return jigsaw.New(jigsaw.Config{
			Chip: o.Chip, Meter: o.Meter,
			Classify:       o.JigsawClassify,
			SchemeName:     "Jigsaw",
			BypassEnabled:  o.JigsawBypass,
			ReconfigCycles: o.ReconfigCycles,
		})
	case KindWhirlpool:
		return jigsaw.New(jigsaw.Config{
			Chip: o.Chip, Meter: o.Meter,
			Classify:       o.WhirlpoolClassify,
			SchemeName:     "Whirlpool",
			BypassEnabled:  o.WhirlpoolBypass,
			ReconfigCycles: o.ReconfigCycles,
		})
	}
	panic("schemes: unknown kind")
}
