package schemes

import (
	"whirlpool/internal/addr"
	"whirlpool/internal/cache"
	"whirlpool/internal/energy"
	"whirlpool/internal/llc"
	"whirlpool/internal/noc"
	"whirlpool/internal/stats"
	"whirlpool/internal/trace"
)

// IdealSPD is the idealized private-baseline D-NUCA of Appendix A: each
// core owns a private 1.5MB L3 that replicates its closest banks, backed
// by a fully-provisioned directory and an exclusive S-NUCA L4 victim cache
// granted the *full* LLC capacity (private regions do not reduce shared
// capacity). It upper-bounds shared-private D-NUCAs (DCC, ASR, ECC).
//
// Its characteristic costs — multi-level lookups and migration traffic on
// every private miss — are exactly what the paper charges it for.
type IdealSPD struct {
	chip  *noc.Chip
	meter *energy.Meter
	priv  []*cache.SetAssoc
	l4    *cache.SetAssoc

	Hits, Misses  uint64 // Hits: anywhere on chip
	PrivHits      uint64
	L4Hits        uint64
	WritebacksMem uint64
}

const (
	privBytes = 1536 * addr.KB
	privWays  = 12
	// privLatency: the private region replicates the 3 closest banks —
	// one bank lookup plus a short hop.
	privHops = 1
)

// NewIdealSPD builds the idealized shared-private D-NUCA.
func NewIdealSPD(chip *noc.Chip, meter *energy.Meter) *IdealSPD {
	s := &IdealSPD{
		chip:  chip,
		meter: meter,
		l4:    cache.NewSetAssoc(chip.TotalBytes(), chip.NBanks(), cache.LRU),
	}
	for c := 0; c < chip.NCores(); c++ {
		s.priv = append(s.priv, cache.NewSetAssoc(privBytes, privWays, cache.LRU))
	}
	return s
}

// Name implements llc.LLC.
func (s *IdealSPD) Name() string { return "IdealSPD" }

func (s *IdealSPD) homeBank(l addr.Line) int {
	return int(stats.Hash64(uint64(l)) % uint64(s.chip.NBanks()))
}

// spill inserts a private-L3 victim into the exclusive L4, charging the
// migration traffic private-baseline D-NUCAs pay.
func (s *IdealSPD) spill(core int, ev cache.Eviction) {
	m := s.chip.Mesh
	home := s.homeBank(ev.Line)
	s.meter.AddBank(1)
	s.meter.AddHops(m.CoreBankHops(core, home))
	_, ev4, evd4 := s.l4.Access(ev.Line, ev.Dirty)
	if evd4 && ev4.Dirty {
		s.meter.AddDRAM(1)
		s.meter.AddHops(m.BankMemHops(s.homeBank(ev4.Line)))
		s.WritebacksMem++
	}
}

// Access implements llc.LLC.
func (s *IdealSPD) Access(core int, a trace.LLCAccess) (uint64, llc.Outcome) {
	m := s.chip.Mesh
	p := s.priv[core]
	if a.Writeback {
		if p.Writeback(a.Line) {
			s.meter.AddTagProbe(1)
			return 0, llc.Miss
		}
		home := s.homeBank(a.Line)
		s.meter.AddTagProbe(1)
		s.meter.AddHops(m.CoreBankHops(core, home))
		if s.l4.Writeback(a.Line) {
			s.meter.AddTagProbe(1)
		} else {
			s.meter.AddDRAM(1)
			s.meter.AddHops(m.BankMemHops(home))
			s.WritebacksMem++
		}
		return 0, llc.Miss
	}

	// Level 1: the private region (closest banks first).
	lat := uint64(noc.BankLatency + 2*noc.HopLatency(privHops))
	s.meter.AddBank(1)
	s.meter.AddHops(privHops)
	hit, evP, evdP := p.Access(a.Line, a.Write)
	if hit {
		s.Hits++
		s.PrivHits++
		return lat, llc.Hit
	}
	if evdP {
		s.spill(core, evP)
	}
	// Level 2: directory + exclusive L4, accessed in parallel.
	home := s.homeBank(a.Line)
	hops := m.CoreBankHops(core, home)
	lat += 2*noc.HopLatency(hops) + noc.BankLatency + noc.DirLatency
	s.meter.AddDirLookup(1)
	s.meter.AddBank(1)
	s.meter.AddHops(hops)
	if present, _ := s.l4.Invalidate(a.Line); present {
		// Exclusive hit: migrate the line into the private region.
		s.Hits++
		s.L4Hits++
		return lat, llc.Hit
	}
	s.Misses++
	memHops := m.BankMemHops(home)
	lat += noc.MemLatency + 2*noc.HopLatency(memHops)
	s.meter.AddDRAM(1)
	s.meter.AddHops(memHops)
	return lat, llc.Miss
}

// Tick implements llc.LLC (no runtime).
func (s *IdealSPD) Tick(uint64) {}

var _ llc.LLC = (*IdealSPD)(nil)
