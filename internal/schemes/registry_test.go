package schemes

import (
	"strings"
	"testing"

	"whirlpool/internal/cache"
	"whirlpool/internal/energy"
	"whirlpool/internal/llc"
	"whirlpool/internal/noc"
)

// unregisterForTest removes a test-registered scheme so registry
// mutations do not leak across tests in this package.
func unregisterForTest(t *testing.T, id Kind) {
	t.Helper()
	t.Cleanup(func() {
		regMu.Lock()
		defer regMu.Unlock()
		delete(registry, id)
		for i, k := range regOrder {
			if k == id {
				regOrder = append(regOrder[:i], regOrder[i+1:]...)
				break
			}
		}
	})
}

func TestKindRoundTrip(t *testing.T) {
	kinds := AllKinds()
	if len(kinds) < 6 {
		t.Fatalf("only %d registered schemes, want at least the paper's 6", len(kinds))
	}
	// The six built-ins come first, in the paper's presentation order.
	wantOrder := []Kind{KindSNUCALRU, KindSNUCADRRIP, KindIdealSPD, KindAwasthi, KindJigsaw, KindWhirlpool}
	for i, k := range wantOrder {
		if kinds[i] != k {
			t.Fatalf("AllKinds()[%d] = %q, want %q", i, kinds[i], k)
		}
	}
	for _, k := range kinds {
		got, err := ParseKind(k.ID())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.ID(), err)
		}
		if got != k {
			t.Fatalf("ParseKind(%q) = %q, want %q", k.ID(), got, k)
		}
		if k.String() == "" || k.String() == "unknown" {
			t.Fatalf("%q has no figure label", k)
		}
	}
	ids := KindIDs()
	if len(ids) != len(kinds) {
		t.Fatalf("KindIDs has %d entries for %d kinds", len(ids), len(kinds))
	}
}

func TestParseKindUnknown(t *testing.T) {
	_, err := ParseKind("bogus")
	if err == nil {
		t.Fatal("ParseKind accepted an unknown scheme")
	}
	if !strings.Contains(err.Error(), "whirlpool") || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("error %q should name the bad input and list valid schemes", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	noop := func(o Options) llc.LLC { return nil }
	if err := Register("", "x", noop); err == nil {
		t.Fatal("registered an empty identifier")
	}
	if err := Register("Has Spaces", "x", noop); err == nil {
		t.Fatal("registered an identifier with spaces")
	}
	if err := Register("nil-builder", "x", nil); err == nil {
		t.Fatal("registered a nil builder")
	}
	if err := Register(string(KindWhirlpool), "dup", noop); err == nil {
		t.Fatal("duplicate registration of a built-in did not error")
	}
}

// A scheme registered at runtime is indistinguishable from a built-in:
// it parses, lists, labels, and builds.
func TestRegisterExternalScheme(t *testing.T) {
	const id = "test-drrip-clone"
	unregisterForTest(t, Kind(id))
	if err := Register(id, "TestClone", func(o Options) llc.LLC {
		return NewSNUCA(o.Chip, o.Meter, cache.DRRIP)
	}); err != nil {
		t.Fatal(err)
	}
	if err := Register(id, "again", func(o Options) llc.LLC { return nil }); err == nil {
		t.Fatal("duplicate registration did not error")
	}
	k, err := ParseKind(id)
	if err != nil {
		t.Fatal(err)
	}
	if k.String() != "TestClone" {
		t.Fatalf("label = %q", k.String())
	}
	found := false
	for _, kk := range AllKinds() {
		if kk == k {
			found = true
		}
	}
	if !found {
		t.Fatal("registered scheme missing from AllKinds")
	}
	l := Build(k, Options{Chip: noc.FourCoreChip(), Meter: &energy.Meter{}})
	if l == nil || l.Name() != "S-NUCA-DRRIP" {
		t.Fatalf("built %v", l)
	}
	lat, out := l.Access(0, demand(99))
	if out == llc.Hit || lat == 0 {
		t.Fatal("registered scheme does not simulate")
	}
}

func TestBuildUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Build of an unknown kind did not panic")
		}
	}()
	Build(Kind("no-such-scheme"), Options{})
}
