package schemes

import (
	"sort"

	"whirlpool/internal/addr"
	"whirlpool/internal/cache"
	"whirlpool/internal/energy"
	"whirlpool/internal/llc"
	"whirlpool/internal/noc"
	"whirlpool/internal/stats"
	"whirlpool/internal/trace"
)

// Awasthi implements Awasthi et al. [4]: dynamic hardware-assisted,
// software-controlled page placement. Pages start in the few banks closest
// to the first-touch core; an OS routine periodically migrates the most
// heavily accessed pages to closer banks when the benefit (saved hop
// cycles) outweighs the cost (copying the page), controlled by the
// alphaA/alphaB thresholds swept in Appendix A.
//
// Because placement is per-page and incremental, the scheme can get stuck
// at a small allocation (Sec 3.3): pages concentrate in the initial banks
// and migrations only pile more pages into the close banks, so capacity
// pressure there produces misses that a global reconfiguration would avoid.
type Awasthi struct {
	chip  *noc.Chip
	meter *energy.Meter
	banks []*cache.SetAssoc

	pageBank  map[addr.Page]int32
	pageHot   map[addr.Page]*pageStat
	bankPages []int // assigned pages per bank (occupancy tracking)
	epoch     uint64
	last      uint64

	// alphaA scales migration cost against benefit; alphaB caps how much
	// of a bank's capacity migrated-in pages may claim per epoch.
	alphaA float64
	alphaB float64

	Hits, Misses  uint64
	Migrations    uint64
	WritebacksMem uint64
}

type pageStat struct {
	count uint32
	core  uint8
}

// initialBanks is how many nearest banks first-touch allocation spreads
// over (Awasthi's initial allocation; Sec 4.5 notes it is four banks).
const initialBanks = 4

// NewAwasthi builds the scheme with the best-performing thresholds from
// our parameter sweep (TestAwasthiParamSweep exercises alternatives).
func NewAwasthi(chip *noc.Chip, meter *energy.Meter, epochCycles uint64) *Awasthi {
	a := &Awasthi{
		chip:      chip,
		meter:     meter,
		pageBank:  make(map[addr.Page]int32),
		pageHot:   make(map[addr.Page]*pageStat),
		bankPages: make([]int, chip.NBanks()),
		epoch:     epochCycles,
		alphaA:    1.0,
		alphaB:    0.25,
	}
	for b := 0; b < chip.NBanks(); b++ {
		a.banks = append(a.banks, cache.NewSetAssoc(chip.BankBytes, 16, cache.LRU))
	}
	return a
}

// SetAlphas overrides the migration thresholds (parameter sweep support).
func (a *Awasthi) SetAlphas(alphaA, alphaB float64) {
	a.alphaA, a.alphaB = alphaA, alphaB
}

// Name implements llc.LLC.
func (a *Awasthi) Name() string { return "Awasthi" }

func (a *Awasthi) bankOf(core int, l addr.Line) int {
	pg := addr.PageOfLine(l)
	if b, ok := a.pageBank[pg]; ok {
		return int(b)
	}
	// First touch: one of the initialBanks closest banks, hashed by page.
	near := a.chip.Mesh.BanksByDistance(core)
	b := near[stats.Hash64(uint64(pg))%initialBanks]
	a.pageBank[pg] = int32(b)
	a.bankPages[b]++
	return b
}

// occupancy returns bank b's assigned-page load relative to its capacity.
func (a *Awasthi) occupancy(b int) float64 {
	return float64(a.bankPages[b]) * addr.LinesPerPage / float64(a.chip.BankLines())
}

// score is the placement cost of a page for a core at a bank: network
// distance plus a capacity-pressure penalty (the alphaB knob trades
// proximity against contention — Awasthi et al.'s capacity management).
func (a *Awasthi) score(core, bank int) float64 {
	m := a.chip.Mesh
	occ := a.occupancy(bank)
	pressure := 0.0
	if occ > 1 {
		// Overcommitted banks thrash: penalize by expected extra misses.
		pressure = (occ - 1) * float64(noc.MemLatency)
	}
	return float64(2*noc.HopLatency(m.CoreBankHops(core, bank))) + pressure/a.alphaB
}

// Access implements llc.LLC.
func (a *Awasthi) Access(core int, acc trace.LLCAccess) (uint64, llc.Outcome) {
	m := a.chip.Mesh
	bank := a.bankOf(core, acc.Line)
	arr := a.banks[bank]
	if acc.Writeback {
		a.meter.AddHops(m.CoreBankHops(core, bank))
		if arr.Writeback(acc.Line) {
			a.meter.AddTagProbe(1)
		} else {
			a.meter.AddTagProbe(1)
			a.meter.AddDRAM(1)
			a.meter.AddHops(m.BankMemHops(bank))
			a.WritebacksMem++
		}
		return 0, llc.Miss
	}
	// Track page heat for the migration runtime.
	pg := addr.PageOfLine(acc.Line)
	st := a.pageHot[pg]
	if st == nil {
		st = &pageStat{}
		a.pageHot[pg] = st
	}
	st.count++
	st.core = uint8(core)

	hops := m.CoreBankHops(core, bank)
	lat := 2*noc.HopLatency(hops) + noc.BankLatency
	a.meter.AddBank(1)
	a.meter.AddHops(hops)
	hit, ev, evicted := arr.Access(acc.Line, acc.Write)
	if hit {
		a.Hits++
		return lat, llc.Hit
	}
	a.Misses++
	memHops := m.BankMemHops(bank)
	lat += noc.MemLatency + 2*noc.HopLatency(memHops)
	a.meter.AddDRAM(1)
	a.meter.AddHops(memHops)
	if evicted && ev.Dirty {
		a.meter.AddDRAM(1)
		a.WritebacksMem++
	}
	return lat, llc.Miss
}

// Tick implements llc.LLC: the periodic page-migration routine.
func (a *Awasthi) Tick(now uint64) {
	if now-a.last < a.epoch {
		return
	}
	a.last = now
	a.migrate()
}

// migrate moves the hottest pages toward their accessing core.
func (a *Awasthi) migrate() {
	type hot struct {
		pg addr.Page
		st *pageStat
	}
	var hots []hot
	//whirl:unordered candidates are totally ordered by (count desc, page asc) before migration
	for pg, st := range a.pageHot {
		if st.count >= 16 {
			hots = append(hots, hot{pg, st})
		}
	}
	sort.Slice(hots, func(i, j int) bool {
		if hots[i].st.count != hots[j].st.count {
			return hots[i].st.count > hots[j].st.count
		}
		return hots[i].pg < hots[j].pg
	})
	// Per-bank inbound budget this epoch (alphaB of bank capacity).
	budget := make([]int, a.chip.NBanks())
	maxIn := int(a.alphaB * float64(a.chip.BankLines()) / addr.LinesPerPage)
	for b := range budget {
		budget[b] = maxIn
	}
	const maxMigrations = 256
	migrated := 0
	m := a.chip.Mesh
	for _, h := range hots {
		if migrated >= maxMigrations {
			break
		}
		core := int(h.st.core)
		cur := int(a.pageBank[h.pg])
		curScore := a.score(core, cur)
		// Find the bank with the best distance/pressure score.
		best, bestScore := cur, curScore
		for _, b := range m.BanksByDistance(core) {
			if b == cur || budget[b] <= 0 {
				continue
			}
			if s := a.score(core, b); s < bestScore {
				best, bestScore = b, s
			}
		}
		if best == cur {
			continue
		}
		// Benefit: accesses x saved score; cost: copying the page.
		benefit := float64(h.st.count) * (curScore - bestScore)
		cost := a.alphaA * float64(addr.LinesPerPage) *
			float64(2*noc.HopLatency(m.Hops2(cur, best)))
		if benefit <= cost {
			continue
		}
		a.movePage(h.pg, cur, best)
		budget[best]--
		migrated++
	}
	// Decay heat so stale pages do not dominate future epochs.
	//whirl:unordered per-entry halving and deletion; no entry observes another
	for pg, st := range a.pageHot {
		st.count /= 2
		if st.count == 0 {
			delete(a.pageHot, pg)
		}
	}
}

// movePage re-homes a page: resident lines are copied to the new bank
// (charged as reads+writes+hops) and invalidated in the old one.
func (a *Awasthi) movePage(pg addr.Page, from, to int) {
	a.Migrations++
	a.pageBank[pg] = int32(to)
	a.bankPages[from]--
	a.bankPages[to]++
	first := addr.FirstLine(pg)
	hops := a.chip.Mesh.Hops2(from, to)
	moved := 0
	for i := 0; i < addr.LinesPerPage; i++ {
		l := first + addr.Line(i)
		if present, dirty := a.banks[from].Invalidate(l); present {
			moved++
			_, ev, evd := a.banks[to].Access(l, dirty)
			if evd && ev.Dirty {
				a.meter.AddDRAM(1)
				a.WritebacksMem++
			}
		}
	}
	a.meter.AddBank(2 * float64(moved))
	a.meter.AddHops(moved * hops)
}

var _ llc.LLC = (*Awasthi)(nil)
