package schemes

import (
	"testing"

	"whirlpool/internal/addr"
	"whirlpool/internal/cache"
	"whirlpool/internal/energy"
	"whirlpool/internal/llc"
	"whirlpool/internal/noc"
	"whirlpool/internal/stats"
	"whirlpool/internal/trace"
)

func demand(l addr.Line) trace.LLCAccess { return trace.LLCAccess{Line: l} }
func wback(l addr.Line) trace.LLCAccess  { return trace.LLCAccess{Line: l, Writeback: true} }

func buildAll(t *testing.T) []llc.LLC {
	t.Helper()
	chip := noc.FourCoreChip()
	var out []llc.LLC
	for _, k := range AllKinds() {
		m := &energy.Meter{}
		out = append(out, Build(k, Options{
			Chip: chip, Meter: m,
			JigsawClassify:    llc.ThreadPrivate,
			WhirlpoolClassify: llc.ThreadPrivate,
			ReconfigCycles:    500_000,
			JigsawBypass:      true,
			WhirlpoolBypass:   true,
		}))
	}
	return out
}

func TestAllSchemesBasicContract(t *testing.T) {
	for _, l := range buildAll(t) {
		// A demand access to a cold line misses; an immediate repeat hits
		// (every scheme caches somewhere on the first fill).
		lat1, out1 := l.Access(0, demand(12345))
		if out1 == llc.Hit {
			t.Fatalf("%s: cold access hit", l.Name())
		}
		if lat1 == 0 {
			t.Fatalf("%s: zero demand latency", l.Name())
		}
		lat2, out2 := l.Access(0, demand(12345))
		if out2 != llc.Hit {
			t.Fatalf("%s: repeat access did not hit", l.Name())
		}
		if lat2 >= lat1 {
			t.Fatalf("%s: hit latency %d >= miss latency %d", l.Name(), lat2, lat1)
		}
		// Writebacks never stall.
		if lat, _ := l.Access(0, wback(12345)); lat != 0 {
			t.Fatalf("%s: writeback stalled %d cycles", l.Name(), lat)
		}
		l.Tick(1_000_000)
	}
}

func TestSchemeNames(t *testing.T) {
	want := map[string]bool{
		"S-NUCA-LRU": true, "S-NUCA-DRRIP": true, "IdealSPD": true,
		"Awasthi": true, "Jigsaw": true, "Whirlpool": true,
	}
	for _, l := range buildAll(t) {
		if !want[l.Name()] {
			t.Fatalf("unexpected scheme name %q", l.Name())
		}
	}
	if len(AllKinds()) != 6 {
		t.Fatal("should be six schemes")
	}
}

func TestSNUCADistributesBanks(t *testing.T) {
	chip := noc.FourCoreChip()
	m := &energy.Meter{}
	s := NewSNUCA(chip, m, cache.LRU)
	counts := make(map[int]int)
	for i := 0; i < 50000; i++ {
		counts[s.bank(demand(addr.Line(i)))]++
	}
	if len(counts) != chip.NBanks() {
		t.Fatalf("S-NUCA used %d banks, want %d", len(counts), chip.NBanks())
	}
	for b, c := range counts {
		if c < 1000 || c > 3000 {
			t.Fatalf("bank %d has %d lines; hashing skewed", b, c)
		}
	}
}

func TestIdealSPDPrivateHitsAreCheap(t *testing.T) {
	chip := noc.FourCoreChip()
	m := &energy.Meter{}
	s := NewIdealSPD(chip, m)
	// Fill a small working set, then re-access: private hits with the
	// minimum latency.
	for i := 0; i < 1000; i++ {
		s.Access(0, demand(addr.Line(i)))
	}
	lat, out := s.Access(0, demand(addr.Line(5)))
	if out != llc.Hit {
		t.Fatal("small WS should hit privately")
	}
	maxPriv := uint64(noc.BankLatency + 2*noc.HopLatency(privHops))
	if lat > maxPriv {
		t.Fatalf("private hit latency %d > %d", lat, maxPriv)
	}
	if s.PrivHits == 0 {
		t.Fatal("no private hits recorded")
	}
}

func TestIdealSPDExclusiveL4(t *testing.T) {
	chip := noc.FourCoreChip()
	m := &energy.Meter{}
	s := NewIdealSPD(chip, m)
	// Stream beyond the 1.5MB private region: victims spill to L4 and
	// re-accessing them hits in L4 (migrating back).
	lines := 3 * 24576 / 2 // 2x the private capacity
	for i := 0; i < lines; i++ {
		s.Access(0, demand(addr.Line(i)))
	}
	for i := 0; i < 1000; i++ {
		s.Access(0, demand(addr.Line(i)))
	}
	if s.L4Hits == 0 {
		t.Fatal("exclusive L4 never hit")
	}
}

func TestAwasthiFirstTouchNearCore(t *testing.T) {
	chip := noc.FourCoreChip()
	m := &energy.Meter{}
	a := NewAwasthi(chip, m, 500_000)
	near := chip.Mesh.BanksByDistance(0)[:initialBanks]
	nearSet := map[int]bool{}
	for _, b := range near {
		nearSet[b] = true
	}
	for i := 0; i < 10000; i++ {
		a.Access(0, demand(addr.Line(i)))
	}
	for pg, b := range a.pageBank {
		if !nearSet[int(b)] {
			t.Fatalf("page %d first-touched to far bank %d", pg, b)
		}
	}
}

func TestAwasthiMigratesHotPages(t *testing.T) {
	chip := noc.FourCoreChip()
	m := &energy.Meter{}
	a := NewAwasthi(chip, m, 100_000)
	rng := stats.NewRng(5)
	now := uint64(0)
	for i := 0; i < 400_000; i++ {
		l := addr.Line(rng.Uint64n(64 * addr.LinesPerPage)) // 64 hot pages
		lat, _ := a.Access(0, demand(l))
		now += 2 + lat
		a.Tick(now)
	}
	if a.Migrations == 0 {
		t.Fatal("hot pages never migrated")
	}
}

func TestAwasthiEnergyAccounted(t *testing.T) {
	chip := noc.FourCoreChip()
	m := &energy.Meter{}
	a := NewAwasthi(chip, m, 100_000)
	for i := 0; i < 1000; i++ {
		a.Access(0, demand(addr.Line(i*64)))
	}
	if m.Total() == 0 || m.MemoryPJ == 0 {
		t.Fatal("no energy recorded")
	}
}
