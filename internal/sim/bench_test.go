package sim

import (
	"testing"

	"whirlpool/internal/energy"
	"whirlpool/internal/trace"
)

// benchTrace is a ~60k-access synthetic trace shared by the sim-level
// benchmarks (built once; all benches replay it read-only).
func benchTrace() *trace.LLCTrace {
	return mkMixedTrace(50_000, 10, 3)
}

// benchCfg shares one LLC stub and meter across iterations so allocs/op
// isolates the simulator's own per-run allocations (the stub's warm
// state is irrelevant: these benches never compare rows).
func benchCfg(llc *fakeLLC, m *energy.Meter, traces ...trace.Reader) Config {
	return Config{LLC: llc, Meter: m, Traces: traces}
}

// BenchmarkSimRunFresh is the pre-arena per-cell cost: every run
// allocates its replay states, cursor, and scheduler scratch from
// scratch. Kept as the in-tree baseline for SimRunnerReuse.
func BenchmarkSimRunFresh(b *testing.B) {
	tr := benchTrace()
	llc, m := &fakeLLC{hitLat: 10, missLat: 100}, &energy.Meter{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := Run(benchCfg(llc, m, tr, nil, nil, nil)); r.Demand == 0 {
			b.Fatal("empty run")
		}
	}
}

// BenchmarkSimRunnerReuse is the batched-sweep per-cell cost: one
// Runner serves every iteration, so replay arenas and the decode cursor
// are reset, not reallocated. The tracked number is allocs/op — the
// per-cell sim allocation floor.
func BenchmarkSimRunnerReuse(b *testing.B) {
	tr := benchTrace()
	llc, m := &fakeLLC{hitLat: 10, missLat: 100}, &energy.Meter{}
	runner := NewRunner()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := runner.Run(benchCfg(llc, m, tr, nil, nil, nil)); r.Demand == 0 {
			b.Fatal("empty run")
		}
	}
}

// BenchmarkSimRunMixMultiCore exercises the lagging-core pick with four
// active cores under fixed-work Loop — the scan the single-core fast
// path must not regress.
func BenchmarkSimRunMixMultiCore(b *testing.B) {
	t1, t2 := benchTrace(), mkMixedTrace(40_000, 7, 5)
	t3, t4 := mkMixedTrace(30_000, 13, 2), mkMixedTrace(20_000, 9, 7)
	llc, m := &fakeLLC{hitLat: 10, missLat: 100}, &energy.Meter{}
	runner := NewRunner()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(llc, m, t1, t2, t3, t4)
		cfg.Loop = true
		if r := runner.Run(cfg); r.Demand == 0 {
			b.Fatal("empty run")
		}
	}
}
