package sim

import (
	"testing"

	"whirlpool/internal/addr"
	"whirlpool/internal/energy"
	"whirlpool/internal/llc"
	"whirlpool/internal/mem"
	"whirlpool/internal/trace"
)

// fakeLLC is a deterministic stub: hits every even line with fixed
// latency, misses odd lines.
type fakeLLC struct {
	hitLat, missLat uint64
	ticks           int
	accesses        int
}

func (f *fakeLLC) Name() string { return "fake" }

func (f *fakeLLC) Access(core int, a trace.LLCAccess) (uint64, llc.Outcome) {
	f.accesses++
	if a.Writeback {
		return 0, llc.Miss
	}
	if a.Line%2 == 0 {
		return f.hitLat, llc.Hit
	}
	return f.missLat, llc.Miss
}

func (f *fakeLLC) Tick(uint64) { f.ticks++ }

func mkTrace(n int, gap uint32) *trace.LLCTrace {
	t := &trace.LLCTrace{}
	for i := 0; i < n; i++ {
		t.Accesses = append(t.Accesses, trace.LLCAccess{Line: addr.Line(i), Gap: gap})
		t.Instrs += uint64(gap)
	}
	return t
}

func TestRunCountsOutcomes(t *testing.T) {
	f := &fakeLLC{hitLat: 10, missLat: 100}
	r := Run(Config{
		LLC:    f,
		Meter:  &energy.Meter{},
		Traces: []*trace.LLCTrace{mkTrace(1000, 10)},
	})
	if r.Hits != 500 || r.Misses != 500 {
		t.Fatalf("hits=%d misses=%d", r.Hits, r.Misses)
	}
	if r.Demand != 1000 {
		t.Fatalf("demand=%d", r.Demand)
	}
	if r.Instrs != 10000 {
		t.Fatalf("instrs=%d", r.Instrs)
	}
}

func TestRunCycleAccounting(t *testing.T) {
	f := &fakeLLC{hitLat: 10, missLat: 100}
	r := Run(Config{
		LLC:    f,
		Meter:  &energy.Meter{},
		Traces: []*trace.LLCTrace{mkTrace(100, 10)},
	})
	// 100 accesses x 10 instrs x 0.5 CPI = 500 base cycles,
	// + (50x10 + 50x100) x LLCStallFactor = 2750 stall cycles.
	want := uint64(500) + uint64(float64(50*10+50*100)*trace.LLCStallFactor)
	if r.Cycles != want {
		t.Fatalf("cycles=%d want %d", r.Cycles, want)
	}
}

func TestRunTickCadence(t *testing.T) {
	f := &fakeLLC{hitLat: 10, missLat: 100}
	Run(Config{
		LLC:       f,
		Meter:     &energy.Meter{},
		Traces:    []*trace.LLCTrace{mkTrace(10000, 100)},
		TickEvery: 10_000,
	})
	if f.ticks < 10 {
		t.Fatalf("ticks=%d, want many", f.ticks)
	}
}

func TestRunMultiCoreInterleaving(t *testing.T) {
	f := &fakeLLC{hitLat: 10, missLat: 100}
	r := Run(Config{
		LLC:   f,
		Meter: &energy.Meter{},
		Traces: []*trace.LLCTrace{
			mkTrace(500, 10),
			mkTrace(500, 10),
			nil, // idle core
		},
	})
	if len(r.Cores) != 3 {
		t.Fatalf("cores=%d", len(r.Cores))
	}
	if r.Cores[0].Demand != 500 || r.Cores[1].Demand != 500 {
		t.Fatal("per-core demand wrong")
	}
	if r.Cores[2].Demand != 0 {
		t.Fatal("idle core has accesses")
	}
}

func TestRunLoopFixedWork(t *testing.T) {
	// Core 1's trace is half as long: under Loop it must keep running
	// until core 0 finishes, but its frozen stats cover one pass only.
	f := &fakeLLC{hitLat: 10, missLat: 10}
	r := Run(Config{
		LLC:   f,
		Meter: &energy.Meter{},
		Traces: []*trace.LLCTrace{
			mkTrace(1000, 10),
			mkTrace(100, 10),
		},
		Loop: true,
	})
	if r.Cores[1].Demand != 100 {
		t.Fatalf("core 1 frozen demand = %d, want 100", r.Cores[1].Demand)
	}
	// The LLC saw more than one pass of core 1's accesses.
	if f.accesses <= 1100 {
		t.Fatalf("LLC accesses = %d; looping did not happen", f.accesses)
	}
}

func TestRunWarmupResetsCounters(t *testing.T) {
	f := &fakeLLC{hitLat: 10, missLat: 100}
	m := &energy.Meter{}
	r := Run(Config{
		LLC:    f,
		Meter:  m,
		Traces: []*trace.LLCTrace{mkTrace(200, 10)},
		Warmup: true,
	})
	// The LLC processed two passes (warmup + measured)...
	if f.accesses != 400 {
		t.Fatalf("LLC saw %d accesses, want 400", f.accesses)
	}
	// ...but results cover exactly one.
	if r.Demand != 200 {
		t.Fatalf("demand=%d, want 200", r.Demand)
	}
	base := uint64(float64(200*10) * trace.BaseCPI)
	stall := uint64(float64(100*10+100*100) * trace.LLCStallFactor)
	if r.Cycles != base+stall {
		t.Fatalf("cycles=%d want %d", r.Cycles, base+stall)
	}
}

func TestRunWritebacksDoNotStall(t *testing.T) {
	f := &fakeLLC{hitLat: 10, missLat: 100}
	tr := &trace.LLCTrace{}
	tr.Accesses = append(tr.Accesses,
		trace.LLCAccess{Line: 2, Gap: 10},
		trace.LLCAccess{Line: 4, Writeback: true},
	)
	tr.Instrs = 10
	r := Run(Config{LLC: f, Meter: &energy.Meter{}, Traces: []*trace.LLCTrace{tr}})
	if r.Cores[0].Writebacks != 1 {
		t.Fatalf("writebacks=%d", r.Cores[0].Writebacks)
	}
	want := uint64(float64(10)*trace.BaseCPI) + uint64(float64(10)*trace.LLCStallFactor)
	if r.Cycles != want {
		t.Fatalf("cycles=%d want %d (writeback must not stall)", r.Cycles, want)
	}
}

func TestRunPerPoolCounters(t *testing.T) {
	f := &fakeLLC{hitLat: 10, missLat: 100}
	r := Run(Config{
		LLC:    f,
		Meter:  &energy.Meter{},
		Traces: []*trace.LLCTrace{mkTrace(100, 10)},
		PoolOf: func(l addr.Line) mem.PoolID {
			return mem.PoolID(uint64(l) % 2)
		},
		NumPools: 2,
	})
	if r.PoolAccesses[0] != 50 || r.PoolAccesses[1] != 50 {
		t.Fatalf("pool accesses %v", r.PoolAccesses)
	}
	// Odd lines miss in fakeLLC.
	if r.PoolMisses[1] != 50 || r.PoolMisses[0] != 0 {
		t.Fatalf("pool misses %v", r.PoolMisses)
	}
}

func TestEmptyRun(t *testing.T) {
	f := &fakeLLC{}
	r := Run(Config{LLC: f, Meter: &energy.Meter{}, Traces: []*trace.LLCTrace{nil}})
	if r.Demand != 0 || r.Cycles != 0 {
		t.Fatal("empty run should be empty")
	}
}
