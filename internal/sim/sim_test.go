package sim

import (
	"testing"

	"whirlpool/internal/addr"
	"whirlpool/internal/energy"
	"whirlpool/internal/llc"
	"whirlpool/internal/mem"
	"whirlpool/internal/trace"
)

// fakeLLC is a deterministic stub: hits every even line with fixed
// latency, misses odd lines.
type fakeLLC struct {
	hitLat, missLat uint64
	ticks           int
	accesses        int
}

func (f *fakeLLC) Name() string { return "fake" }

func (f *fakeLLC) Access(core int, a trace.LLCAccess) (uint64, llc.Outcome) {
	f.accesses++
	if a.Writeback {
		return 0, llc.Miss
	}
	if a.Line%2 == 0 {
		return f.hitLat, llc.Hit
	}
	return f.missLat, llc.Miss
}

func (f *fakeLLC) Tick(uint64) { f.ticks++ }

func mkTrace(n int, gap uint32) *trace.LLCTrace {
	t := &trace.LLCTrace{}
	for i := 0; i < n; i++ {
		t.Append(trace.LLCAccess{Line: addr.Line(i), Gap: gap})
		t.Instrs += uint64(gap)
	}
	return t
}

func TestRunCountsOutcomes(t *testing.T) {
	f := &fakeLLC{hitLat: 10, missLat: 100}
	r := Run(Config{
		LLC:    f,
		Meter:  &energy.Meter{},
		Traces: []trace.Reader{mkTrace(1000, 10)},
	})
	if r.Hits != 500 || r.Misses != 500 {
		t.Fatalf("hits=%d misses=%d", r.Hits, r.Misses)
	}
	if r.Demand != 1000 {
		t.Fatalf("demand=%d", r.Demand)
	}
	if r.Instrs != 10000 {
		t.Fatalf("instrs=%d", r.Instrs)
	}
}

func TestRunCycleAccounting(t *testing.T) {
	f := &fakeLLC{hitLat: 10, missLat: 100}
	r := Run(Config{
		LLC:    f,
		Meter:  &energy.Meter{},
		Traces: []trace.Reader{mkTrace(100, 10)},
	})
	// 100 accesses x 10 instrs x 0.5 CPI = 500 base cycles,
	// + (50x10 + 50x100) x LLCStallFactor = 2750 stall cycles.
	want := uint64(500) + uint64(float64(50*10+50*100)*trace.LLCStallFactor)
	if r.Cycles != want {
		t.Fatalf("cycles=%d want %d", r.Cycles, want)
	}
}

func TestRunTickCadence(t *testing.T) {
	f := &fakeLLC{hitLat: 10, missLat: 100}
	Run(Config{
		LLC:       f,
		Meter:     &energy.Meter{},
		Traces:    []trace.Reader{mkTrace(10000, 100)},
		TickEvery: 10_000,
	})
	if f.ticks < 10 {
		t.Fatalf("ticks=%d, want many", f.ticks)
	}
}

func TestRunMultiCoreInterleaving(t *testing.T) {
	f := &fakeLLC{hitLat: 10, missLat: 100}
	r := Run(Config{
		LLC:   f,
		Meter: &energy.Meter{},
		Traces: []trace.Reader{
			mkTrace(500, 10),
			mkTrace(500, 10),
			nil, // idle core
		},
	})
	if len(r.Cores) != 3 {
		t.Fatalf("cores=%d", len(r.Cores))
	}
	if r.Cores[0].Demand != 500 || r.Cores[1].Demand != 500 {
		t.Fatal("per-core demand wrong")
	}
	if r.Cores[2].Demand != 0 {
		t.Fatal("idle core has accesses")
	}
}

func TestRunLoopFixedWork(t *testing.T) {
	// Core 1's trace is half as long: under Loop it must keep running
	// until core 0 finishes, but its frozen stats cover one pass only.
	f := &fakeLLC{hitLat: 10, missLat: 10}
	r := Run(Config{
		LLC:   f,
		Meter: &energy.Meter{},
		Traces: []trace.Reader{
			mkTrace(1000, 10),
			mkTrace(100, 10),
		},
		Loop: true,
	})
	if r.Cores[1].Demand != 100 {
		t.Fatalf("core 1 frozen demand = %d, want 100", r.Cores[1].Demand)
	}
	// The LLC saw more than one pass of core 1's accesses.
	if f.accesses <= 1100 {
		t.Fatalf("LLC accesses = %d; looping did not happen", f.accesses)
	}
}

func TestRunWarmupResetsCounters(t *testing.T) {
	f := &fakeLLC{hitLat: 10, missLat: 100}
	m := &energy.Meter{}
	r := Run(Config{
		LLC:    f,
		Meter:  m,
		Traces: []trace.Reader{mkTrace(200, 10)},
		Warmup: true,
	})
	// The LLC processed two passes (warmup + measured)...
	if f.accesses != 400 {
		t.Fatalf("LLC saw %d accesses, want 400", f.accesses)
	}
	// ...but results cover exactly one.
	if r.Demand != 200 {
		t.Fatalf("demand=%d, want 200", r.Demand)
	}
	base := uint64(float64(200*10) * trace.BaseCPI)
	stall := uint64(float64(100*10+100*100) * trace.LLCStallFactor)
	if r.Cycles != base+stall {
		t.Fatalf("cycles=%d want %d", r.Cycles, base+stall)
	}
}

func TestRunWritebacksDoNotStall(t *testing.T) {
	f := &fakeLLC{hitLat: 10, missLat: 100}
	tr := &trace.LLCTrace{}
	tr.Append(trace.LLCAccess{Line: 2, Gap: 10})
	tr.Append(trace.LLCAccess{Line: 4, Writeback: true})
	tr.Instrs = 10
	r := Run(Config{LLC: f, Meter: &energy.Meter{}, Traces: []trace.Reader{tr}})
	if r.Cores[0].Writebacks != 1 {
		t.Fatalf("writebacks=%d", r.Cores[0].Writebacks)
	}
	want := uint64(float64(10)*trace.BaseCPI) + uint64(float64(10)*trace.LLCStallFactor)
	if r.Cycles != want {
		t.Fatalf("cycles=%d want %d (writeback must not stall)", r.Cycles, want)
	}
}

func TestRunPerPoolCounters(t *testing.T) {
	f := &fakeLLC{hitLat: 10, missLat: 100}
	r := Run(Config{
		LLC:    f,
		Meter:  &energy.Meter{},
		Traces: []trace.Reader{mkTrace(100, 10)},
		PoolOf: func(l addr.Line) mem.PoolID {
			return mem.PoolID(uint64(l) % 2)
		},
		NumPools: 2,
	})
	if r.PoolAccesses[0] != 50 || r.PoolAccesses[1] != 50 {
		t.Fatalf("pool accesses %v", r.PoolAccesses)
	}
	// Odd lines miss in fakeLLC.
	if r.PoolMisses[1] != 50 || r.PoolMisses[0] != 0 {
		t.Fatalf("pool misses %v", r.PoolMisses)
	}
}

func TestEmptyRun(t *testing.T) {
	f := &fakeLLC{}
	r := Run(Config{LLC: f, Meter: &energy.Meter{}, Traces: []trace.Reader{nil}})
	if r.Demand != 0 || r.Cycles != 0 {
		t.Fatal("empty run should be empty")
	}
}

// recordingLLC records the line sequence it sees, for replay-identity
// checks across cursor resets.
type recordingLLC struct {
	fakeLLC
	lines []addr.Line
}

func (r *recordingLLC) Access(core int, a trace.LLCAccess) (uint64, llc.Outcome) {
	r.lines = append(r.lines, a.Line)
	return r.fakeLLC.Access(core, a)
}

// TestRunWarmupReplayIsIdentical drives Warmup through the cursor path:
// the measured pass must see exactly the access sequence the warmup pass
// saw (Cursor.Reset rewinds losslessly).
func TestRunWarmupReplayIsIdentical(t *testing.T) {
	r := &recordingLLC{fakeLLC: fakeLLC{hitLat: 10, missLat: 100}}
	Run(Config{
		LLC:    r,
		Meter:  &energy.Meter{},
		Traces: []trace.Reader{mkTrace(300, 10)},
		Warmup: true,
	})
	if len(r.lines) != 600 {
		t.Fatalf("LLC saw %d accesses, want 600 (2 passes)", len(r.lines))
	}
	for i := 0; i < 300; i++ {
		if r.lines[i] != r.lines[300+i] {
			t.Fatalf("measured pass diverges at %d: warmup %d, measured %d",
				i, r.lines[i], r.lines[300+i])
		}
	}
}

// TestRunWarmupCountersStartFromZero pins the warmup contract under the
// cursor: per-core counters cover exactly the measured pass, and cycle
// accounting restarts at the warm boundary.
func TestRunWarmupCountersStartFromZero(t *testing.T) {
	f := &fakeLLC{hitLat: 10, missLat: 100}
	m := &energy.Meter{}
	r := Run(Config{
		LLC:    f,
		Meter:  m,
		Traces: []trace.Reader{mkTrace(200, 10)},
		Warmup: true,
	})
	c := r.Cores[0]
	if c.Instrs != 2000 {
		t.Fatalf("core instrs = %d, want 2000 (one measured pass)", c.Instrs)
	}
	if c.Demand != 200 || c.Hits != 100 || c.Misses != 100 {
		t.Fatalf("core counters = %+v, want one pass of 200 accesses", c)
	}
	// Cycles exclude the warmup pass: base + stalls of one pass only
	// (mkTrace has no L2 hits, so no L2 stall term).
	base := uint64(float64(2000) * trace.BaseCPI)
	stall := uint64(float64(100*10+100*100) * trace.LLCStallFactor)
	if c.Cycles != base+stall {
		t.Fatalf("core cycles = %d, want %d", c.Cycles, base+stall)
	}
}

// TestRunLoopStatsFreezeAtFirstCompletion pins the fixed-work contract
// under the cursor: the short core keeps replaying (cursor resets) until
// the long core finishes, but its stats cover exactly its first pass.
func TestRunLoopStatsFreezeAtFirstCompletion(t *testing.T) {
	r := &recordingLLC{fakeLLC: fakeLLC{hitLat: 10, missLat: 10}}
	res := Run(Config{
		LLC:   r,
		Meter: &energy.Meter{},
		Traces: []trace.Reader{
			mkTrace(1000, 10),
			trace.Offset(mkTrace(100, 10), 1<<20),
		},
		Loop: true,
	})
	c1 := res.Cores[1]
	if c1.Demand != 100 || c1.Instrs != 1000 {
		t.Fatalf("short core frozen stats = %+v, want first pass only", c1)
	}
	if c1.Hits != 50 || c1.Misses != 50 {
		t.Fatalf("short core hit/miss = %d/%d, want 50/50", c1.Hits, c1.Misses)
	}
	// The short core's replayed passes see the same lines each time.
	var short []addr.Line
	for _, l := range r.lines {
		if l >= 1<<20 {
			short = append(short, l-1<<20)
		}
	}
	// The run stops when the long core finishes, so the short core's
	// final pass may be partial — but every replayed access must match.
	if len(short) < 200 {
		t.Fatalf("short core replayed %d accesses, want >= 200", len(short))
	}
	for i, l := range short {
		if l != addr.Line(i%100) {
			t.Fatalf("short core pass diverges at %d: got %d", i, l)
		}
	}
}

// TestRunWarmupThenLoop combines both passes: warmup rewinds every
// cursor, then the fixed-work loop replays from the start.
func TestRunWarmupThenLoop(t *testing.T) {
	f := &fakeLLC{hitLat: 10, missLat: 10}
	r := Run(Config{
		LLC:   f,
		Meter: &energy.Meter{},
		Traces: []trace.Reader{
			mkTrace(400, 10),
			mkTrace(100, 10),
		},
		Loop:   true,
		Warmup: true,
	})
	if r.Cores[0].Demand != 400 || r.Cores[1].Demand != 100 {
		t.Fatalf("frozen demand = %d/%d, want 400/100",
			r.Cores[0].Demand, r.Cores[1].Demand)
	}
	// Warmup pass (500) + measured fixed-work (core0 400, core1 >= 400).
	if f.accesses < 1300 {
		t.Fatalf("LLC accesses = %d, want >= 1300", f.accesses)
	}
}

// TestRunOffsetTrace replays an offset reader (the mix path) and checks
// the LLC sees shifted lines.
func TestRunOffsetTrace(t *testing.T) {
	r := &recordingLLC{fakeLLC: fakeLLC{hitLat: 10, missLat: 10}}
	base := mkTrace(10, 10)
	Run(Config{
		LLC:    r,
		Meter:  &energy.Meter{},
		Traces: []trace.Reader{trace.Offset(base, 1<<44)},
	})
	for i, l := range r.lines {
		if l != addr.Line(i)+1<<44 {
			t.Fatalf("offset line %d = %d", i, l)
		}
	}
}
