// Package sim is the chip simulator: it replays per-core LLC traces
// (produced by trace.FilterPrivate) against a pluggable LLC organization,
// interleaving cores by their simulated cycle counts, accumulating timing,
// data-movement energy, and per-pool statistics.
//
// Traces arrive as trace.Reader values and are replayed through cursors:
// the simulator never materializes an access slice, so a run's resident
// cost is the columnar trace plus O(1) per-core replay state. Warmup and
// fixed-work (Loop) passes rewind via Cursor.Reset.
package sim

import (
	"whirlpool/internal/addr"
	"whirlpool/internal/energy"
	"whirlpool/internal/llc"
	"whirlpool/internal/mem"
	"whirlpool/internal/trace"
)

// DefaultTickEvery is how often (in cycles) the LLC's runtime hook fires.
const DefaultTickEvery = 100_000

// Config describes one simulation run.
type Config struct {
	// LLC is the organization under test (constructed against Meter).
	LLC llc.LLC
	// Meter accumulates data-movement energy for the run.
	Meter *energy.Meter
	// Traces holds one filtered trace reader per core; nil entries are
	// idle cores.
	Traces []trace.Reader
	// TickEvery is the LLC runtime hook period in cycles.
	TickEvery uint64
	// PoolOf optionally classifies lines for per-pool statistics.
	PoolOf func(addr.Line) mem.PoolID
	// NumPools sizes the per-pool counters when PoolOf is set.
	NumPools int
	// OnAccess, if set, observes every demand access (time-series
	// figures). Keep it nil on hot paths.
	OnAccess func(now uint64, core int, a trace.LLCAccess, lat uint64, out llc.Outcome)
	// OnTick, if set, fires after every LLC Tick (allocation sampling).
	OnTick func(now uint64)
	// Loop keeps cores replaying their traces until every core has
	// completed at least one pass (the fixed-work mix methodology);
	// per-core stats freeze at first completion.
	Loop bool
	// Warmup replays each trace once, unmeasured, before the measured
	// pass — the analogue of the paper's 20B-instruction fast-forward.
	// Caches, monitors, and the reconfiguration runtime reach steady
	// state; energy and timing counters then start from zero.
	Warmup bool
}

// CoreResult summarizes one core's run.
type CoreResult struct {
	Instrs     uint64
	Cycles     uint64
	LLCStall   uint64
	Demand     uint64
	Hits       uint64
	Misses     uint64
	Bypasses   uint64
	Writebacks uint64
}

// IPC returns instructions per cycle.
func (c CoreResult) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Instrs) / float64(c.Cycles)
}

// Result is the outcome of one simulation run.
type Result struct {
	Scheme string
	// Cycles is when the last core finished its (first) pass.
	Cycles uint64
	Cores  []CoreResult
	Energy energy.Meter

	Hits, Misses, Bypasses uint64
	Demand                 uint64
	Instrs                 uint64

	// PoolAccesses/PoolMisses are per-pool demand counters (when PoolOf
	// is configured).
	PoolAccesses []uint64
	PoolMisses   []uint64
}

// TotalAccessesAPKI returns demand LLC accesses per kilo-instruction.
func (r *Result) TotalAccessesAPKI() float64 {
	if r.Instrs == 0 {
		return 0
	}
	return float64(r.Demand) / float64(r.Instrs) * 1000
}

// MPKI returns LLC misses (including bypasses) per kilo-instruction.
func (r *Result) MPKI() float64 {
	if r.Instrs == 0 {
		return 0
	}
	return float64(r.Misses+r.Bypasses) / float64(r.Instrs) * 1000
}

// coreState tracks replay progress for one core: a cursor over its
// trace plus position/cycle counters.
type coreState struct {
	cur trace.Cursor
	n   int           // accesses per pass
	sum trace.Summary // the trace's private-level stats

	pos       int
	cycles    uint64
	warmStart uint64 // cycle count when measurement began
	instrs    uint64
	passes    int
	finished  bool // stats frozen
	res       CoreResult
}

// next returns the core's next access, rewinding the cursor at the end
// of each full pass. done reports that this access completes a pass.
func (cs *coreState) next() (a trace.LLCAccess, done bool) {
	a, _ = cs.cur.Next()
	cs.pos++
	if cs.pos >= cs.n {
		cs.cur.Reset()
		cs.pos = 0
		return a, true
	}
	return a, false
}

// Runner executes simulations while reusing all per-run scratch state —
// the per-core replay states, the scheduler's pick list, and (when the
// same trace reader comes back, as it does for every scheme of one app
// in a batched sweep cell) the decode cursors themselves, rewound
// instead of reallocated. A sweep worker holds one Runner for its whole
// cell stream, so per-cell sim setup is a handful of resets instead of a
// fresh allocation graph.
//
// A Runner is not safe for concurrent use; give each goroutine its own.
// The zero value is ready to use. Results returned by Run are
// independent of the Runner and stay valid across later runs.
type Runner struct {
	cores  []coreState    // per-slot replay state, reused across runs
	lastTr []trace.Reader // slot i's reader last run; pointer-equal => cursor reuse
	pick   []int          // scheduler scratch: core indices still in play
	warm   []int          // warmupPass scratch copy of pick
}

// NewRunner returns an empty Runner (equivalent to new(Runner)).
func NewRunner() *Runner { return &Runner{} }

// warmupPass replays every trace once without recording statistics,
// bringing caches, monitors, and runtimes to steady state. It returns the
// next Tick deadline.
func (r *Runner) warmupPass(cfg Config, cores []coreState, pick []int, nextTick uint64) uint64 {
	// Work on a scratch copy: cores leave the list as they finish their
	// pass. Ordered removal keeps the scan's ascending-index tie-break,
	// so results stay bit-identical to the historical full scan.
	live := append(r.warm[:0], pick...)
	r.warm = live[:0]
	for len(live) > 0 {
		var cs *coreState
		core, k := live[0], 0
		if len(live) == 1 {
			cs = &cores[core]
		} else {
			for j, i := range live {
				c := &cores[i]
				if cs == nil || c.cycles < cs.cycles {
					cs, core, k = c, i, j
				}
			}
		}
		a, done := cs.next()
		if a.Writeback {
			_, _ = cfg.LLC.Access(core, a)
		} else {
			cs.cycles += uint64(float64(a.Gap) * trace.BaseCPI)
			lat, _ := cfg.LLC.Access(core, a)
			cs.cycles += uint64(float64(lat) * trace.LLCStallFactor)
		}
		if cs.cycles >= nextTick {
			cfg.LLC.Tick(cs.cycles)
			nextTick += cfg.TickEvery
		}
		if done {
			cs.finished = true
			live = append(live[:k], live[k+1:]...)
		}
	}
	return nextTick
}

// Run executes the simulation to completion and returns the result. It
// is shorthand for new(Runner).Run(cfg); hot callers that run many
// simulations (sweep workers) keep a Runner instead.
func Run(cfg Config) *Result {
	return new(Runner).Run(cfg)
}

// Run executes one simulation to completion, reusing the Runner's
// arenas. Results are bit-identical to the package-level Run.
func (r *Runner) Run(cfg Config) *Result {
	if cfg.TickEvery == 0 {
		cfg.TickEvery = DefaultTickEvery
	}
	res := &Result{Scheme: cfg.LLC.Name()}
	if cfg.PoolOf != nil {
		res.PoolAccesses = make([]uint64, cfg.NumPools)
		res.PoolMisses = make([]uint64, cfg.NumPools)
	}
	n := len(cfg.Traces)
	if cap(r.cores) < n {
		r.cores = make([]coreState, n)
		r.lastTr = make([]trace.Reader, n)
	}
	cores, lastTr := r.cores[:n], r.lastTr[:n]
	pick := r.pick[:0]
	for i, t := range cfg.Traces {
		cs := &cores[i]
		if t == nil || t.NumAccesses() == 0 {
			*cs = coreState{}
			lastTr[i] = nil
			continue
		}
		// Reuse the slot's cursor when the same reader is back (every
		// scheme of a batched same-app cell group): Reset fully rewinds
		// decode state, so a rewound cursor is indistinguishable from a
		// fresh one.
		cur := cs.cur
		if cur != nil && lastTr[i] == t {
			cur.Reset()
		} else {
			cur = t.NewCursor()
			lastTr[i] = t
		}
		*cs = coreState{cur: cur, n: t.NumAccesses(), sum: t.Stats()}
		pick = append(pick, i)
	}
	r.pick = pick[:0]
	if len(pick) == 0 {
		return res
	}
	var nextTick uint64 = cfg.TickEvery
	if cfg.Warmup {
		nextTick = r.warmupPass(cfg, cores, pick, nextTick)
		// Measurement starts warm: reset timing and energy, keep cache
		// state. The cursors were rewound as each warmup pass completed.
		for _, i := range pick {
			c := &cores[i]
			warmCycles := c.cycles
			*c = coreState{
				cur: c.cur, n: c.n, sum: c.sum,
				cycles: warmCycles, warmStart: warmCycles,
			}
		}
		cfg.Meter.Reset()
	}
	remaining := len(pick)
	for remaining > 0 {
		// Pick the lagging core. The single-active-core case (every
		// RunSingle sweep cell) needs no scan at all; multi-core mixes
		// scan the in-play list — ascending core order, matching the
		// historical full-array scan's tie-break. Under fixed-work (Loop)
		// finished cores keep running until every core completes at least
		// one pass; otherwise they leave the list at first completion.
		var cs *coreState
		core := -1
		if len(pick) == 1 {
			core = pick[0]
			cs = &cores[core]
		} else {
			for _, i := range pick {
				c := &cores[i]
				if cs == nil || c.cycles < cs.cycles {
					cs, core = c, i
				}
			}
		}
		if cs == nil {
			break
		}
		a, done := cs.next()
		if a.Writeback {
			_, _ = cfg.LLC.Access(core, a)
			if !cs.finished {
				cs.res.Writebacks++
			}
		} else {
			cs.cycles += uint64(float64(a.Gap) * trace.BaseCPI)
			cs.instrs += uint64(a.Gap)
			lat, out := cfg.LLC.Access(core, a)
			lat = uint64(float64(lat) * trace.LLCStallFactor)
			cs.cycles += lat
			if !cs.finished {
				cs.res.Demand++
				cs.res.LLCStall += lat
				switch out {
				case llc.Hit:
					cs.res.Hits++
				case llc.Bypass:
					cs.res.Bypasses++
				default:
					cs.res.Misses++
				}
				if cfg.PoolOf != nil {
					p := int(cfg.PoolOf(a.Line))
					if p >= 0 && p < len(res.PoolAccesses) {
						res.PoolAccesses[p]++
						if out != llc.Hit {
							res.PoolMisses[p]++
						}
					}
				}
			}
			if cfg.OnAccess != nil {
				cfg.OnAccess(cs.cycles, core, a, lat, out)
			}
		}
		if cs.cycles >= nextTick {
			cfg.LLC.Tick(cs.cycles)
			if cfg.OnTick != nil {
				cfg.OnTick(cs.cycles)
			}
			nextTick += cfg.TickEvery
		}
		if done {
			cs.passes++
			if !cs.finished {
				cs.finished = true
				cs.res.Instrs = cs.instrs
				cs.res.Cycles = cs.cycles - cs.warmStart + cs.sum.L2Hits*trace.L2HitStall
				remaining--
				if !cfg.Loop {
					for k, i := range pick {
						if i == core {
							pick = append(pick[:k], pick[k+1:]...)
							break
						}
					}
				}
			}
		}
	}
	// Gather totals from frozen per-core results.
	res.Cores = make([]CoreResult, 0, n)
	for i := range cfg.Traces {
		var cr CoreResult
		if cores[i].cur != nil {
			cr = cores[i].res
		}
		res.Cores = append(res.Cores, cr)
		res.Hits += cr.Hits
		res.Misses += cr.Misses
		res.Bypasses += cr.Bypasses
		res.Demand += cr.Demand
		res.Instrs += cr.Instrs
		if cr.Cycles > res.Cycles {
			res.Cycles = cr.Cycles
		}
	}
	res.Energy = *cfg.Meter
	return res
}
