package sim

import (
	"reflect"
	"sync"
	"testing"

	"whirlpool/internal/addr"
	"whirlpool/internal/energy"
	"whirlpool/internal/mem"
	"whirlpool/internal/trace"
)

// mkMixedTrace builds a trace with writebacks and writes so the reused
// replay state exercises every access kind.
func mkMixedTrace(n int, gap uint32, stride int) *trace.LLCTrace {
	t := &trace.LLCTrace{}
	for i := 0; i < n; i++ {
		t.Append(trace.LLCAccess{Line: addr.Line(i * stride), Gap: gap, Write: i%3 == 0})
		t.Instrs += uint64(gap)
		if i%5 == 0 {
			t.Append(trace.LLCAccess{Line: addr.Line(i), Writeback: true})
		}
	}
	return t
}

// runBoth executes cfg once via the package-level Run (fresh state) and
// once via r, requiring identical results. The fakeLLC is rebuilt per
// call so cache-side state never leaks between the two.
func runBoth(t *testing.T, r *Runner, mk func() Config) {
	t.Helper()
	want := Run(mk())
	got := r.Run(mk())
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("Runner.Run diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestRunnerReuseBitIdentity replays a stream of heterogeneous cells —
// single-core, multi-core Loop mixes, warmup on and off, changing chip
// widths, repeated same-trace cells — through one Runner and requires
// every result to match a fresh Run exactly. This is the sweep batching
// contract: arena reuse must be invisible in the rows.
func TestRunnerReuseBitIdentity(t *testing.T) {
	tr1 := mkMixedTrace(500, 10, 2)
	tr2 := mkMixedTrace(300, 7, 3)
	tr3 := mkMixedTrace(200, 13, 1)
	r := NewRunner()

	single := func(tr trace.Reader, warm bool) func() Config {
		return func() Config {
			return Config{
				LLC: &fakeLLC{hitLat: 10, missLat: 100}, Meter: &energy.Meter{},
				Traces: []trace.Reader{tr, nil, nil, nil}, Warmup: warm,
			}
		}
	}
	mix := func(traces ...trace.Reader) func() Config {
		return func() Config {
			return Config{
				LLC: &fakeLLC{hitLat: 10, missLat: 100}, Meter: &energy.Meter{},
				Traces: traces, Loop: true, Warmup: true,
			}
		}
	}

	// Same trace back to back: the cursor-reuse path.
	runBoth(t, r, single(tr1, false))
	runBoth(t, r, single(tr1, true))
	runBoth(t, r, single(tr1, true))
	// Different trace in the same slot: cursor replaced.
	runBoth(t, r, single(tr2, true))
	// Wider chip: arenas regrow.
	runBoth(t, r, mix(tr1, tr2, tr3, nil, nil, nil, nil, nil))
	// Back to narrow: arenas shrink in place.
	runBoth(t, r, single(tr3, true))
	// Multi-core without idle tails, cycles tied at start.
	runBoth(t, r, mix(tr1, tr1, tr2))
}

// TestRunnerPoolCounters checks per-pool counters come out fresh (not
// accumulated across reuse).
func TestRunnerPoolCounters(t *testing.T) {
	tr := mkMixedTrace(200, 10, 1)
	r := NewRunner()
	mk := func() Config {
		return Config{
			LLC: &fakeLLC{hitLat: 10, missLat: 100}, Meter: &energy.Meter{},
			Traces:   []trace.Reader{tr},
			PoolOf:   func(l addr.Line) mem.PoolID { return mem.PoolID(uint64(l) % 2) },
			NumPools: 2,
		}
	}
	first := r.Run(mk())
	second := r.Run(mk())
	if !reflect.DeepEqual(first.PoolAccesses, second.PoolAccesses) ||
		!reflect.DeepEqual(first.PoolMisses, second.PoolMisses) {
		t.Fatalf("pool counters drift across reuse: %v/%v then %v/%v",
			first.PoolAccesses, first.PoolMisses, second.PoolAccesses, second.PoolMisses)
	}
}

// TestRunnerEmptyAndIdle keeps the degenerate paths working through
// reuse: all-idle configs and zero-access traces.
func TestRunnerEmptyAndIdle(t *testing.T) {
	r := NewRunner()
	tr := mkMixedTrace(50, 5, 1)
	if res := r.Run(Config{LLC: &fakeLLC{}, Meter: &energy.Meter{}, Traces: []trace.Reader{nil, &trace.LLCTrace{}}}); res.Demand != 0 {
		t.Fatalf("idle run did work: %+v", res)
	}
	if res := r.Run(Config{LLC: &fakeLLC{hitLat: 1, missLat: 2}, Meter: &energy.Meter{}, Traces: []trace.Reader{tr}}); res.Demand == 0 {
		t.Fatal("live run after idle run did nothing")
	}
	got := r.Run(Config{LLC: &fakeLLC{}, Meter: &energy.Meter{}, Traces: []trace.Reader{nil}})
	want := Run(Config{LLC: &fakeLLC{}, Meter: &energy.Meter{}, Traces: []trace.Reader{nil}})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("idle run after live run: got %+v, want %+v", got, want)
	}
}

// TestRunnersConcurrent gives each goroutine its own Runner over shared
// read-only traces (the sweep worker topology) and requires identical
// results — the arrangement make race exercises.
func TestRunnersConcurrent(t *testing.T) {
	tr1 := mkMixedTrace(400, 10, 2)
	tr2 := mkMixedTrace(300, 7, 3)
	want := Run(Config{LLC: &fakeLLC{hitLat: 10, missLat: 100}, Meter: &energy.Meter{},
		Traces: []trace.Reader{tr1, tr2}, Loop: true, Warmup: true})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := NewRunner()
			for k := 0; k < 3; k++ {
				got := r.Run(Config{LLC: &fakeLLC{hitLat: 10, missLat: 100}, Meter: &energy.Meter{},
					Traces: []trace.Reader{tr1, tr2}, Loop: true, Warmup: true})
				if !reflect.DeepEqual(want, got) {
					t.Errorf("concurrent runner diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
}
