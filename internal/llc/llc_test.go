package llc

import (
	"testing"

	"whirlpool/internal/addr"
	"whirlpool/internal/mem"
)

func TestThreadPrivate(t *testing.T) {
	k := ThreadPrivate(3, addr.Line(100))
	if k.Core != 3 || k.Pool != 0 {
		t.Fatalf("key = %+v", k)
	}
}

func TestProcessShared(t *testing.T) {
	k := ProcessShared(3, addr.Line(100))
	if k.Core != SharedVC || k.Pool != 0 {
		t.Fatalf("key = %+v", k)
	}
}

func TestPoolPrivate(t *testing.T) {
	poolOf := func(l addr.Line) mem.PoolID { return mem.PoolID(uint64(l) % 4) }
	c := PoolPrivate(poolOf)
	k := c(1, addr.Line(6))
	if k.Core != 1 || k.Pool != 2 {
		t.Fatalf("key = %+v", k)
	}
	// Same line from another core: different VC (thread-private pools).
	k2 := c(2, addr.Line(6))
	if k2.Core != 2 || k2.Pool != 2 {
		t.Fatalf("key = %+v", k2)
	}
}

func TestPoolShared(t *testing.T) {
	poolOf := func(l addr.Line) mem.PoolID { return mem.PoolID(uint64(l) % 4) }
	c := PoolShared(poolOf)
	k1 := c(0, addr.Line(7))
	k2 := c(3, addr.Line(7))
	if k1 != k2 {
		t.Fatal("shared pool classification must not depend on core")
	}
	if k1.Core != SharedVC || k1.Pool != 3 {
		t.Fatalf("key = %+v", k1)
	}
}
