// Package llc defines the interface every evaluated last-level cache
// organization implements, and the data classification hook that maps
// accesses to virtual caches.
package llc

import (
	"whirlpool/internal/addr"
	"whirlpool/internal/mem"
	"whirlpool/internal/trace"
)

// Outcome classifies the result of a demand LLC access.
type Outcome uint8

// Access outcomes.
const (
	Hit Outcome = iota
	Miss
	Bypass
)

// LLC is a last-level cache organization under evaluation.
type LLC interface {
	// Name identifies the scheme ("Whirlpool", "Jigsaw", ...).
	Name() string
	// Access processes one access from core. For demand accesses it
	// returns the latency the core observes and the outcome; writebacks
	// return zero latency.
	Access(core int, a trace.LLCAccess) (latency uint64, out Outcome)
	// Tick informs the scheme of the current cycle so periodic runtimes
	// (Jigsaw's OS reconfigurations, Awasthi's migrations) can fire.
	Tick(now uint64)
}

// VCKey identifies a virtual cache: the owning core (or SharedVC) plus the
// memory pool. Plain Jigsaw uses Pool 0 for everything; Whirlpool gives
// each pool its own VC.
type VCKey struct {
	Core int16 // owning core, or SharedVC for process-shared VCs
	Pool mem.PoolID
}

// SharedVC marks a VC accessed by multiple cores (the process VC).
const SharedVC int16 = -1

// Classifier maps an access to its virtual cache. Implementations combine
// page→pool lookups (static classification) with ownership (thread-private
// vs process pages), mirroring the paper's TLB-based mechanism.
type Classifier func(core int, line addr.Line) VCKey

// ThreadPrivate classifies everything into the accessing core's private
// VC: baseline Jigsaw on single-threaded apps.
func ThreadPrivate(core int, _ addr.Line) VCKey {
	return VCKey{Core: int16(core), Pool: 0}
}

// ProcessShared classifies everything into one process VC: baseline Jigsaw
// on parallel apps, where work-stealing makes most pages multi-threaded.
func ProcessShared(int, addr.Line) VCKey {
	return VCKey{Core: SharedVC, Pool: 0}
}

// PoolPrivate builds a Whirlpool classifier for single-threaded apps: each
// pool gets a per-core VC. poolOf maps a line to its pool (the simulated
// page-table/TLB lookup).
func PoolPrivate(poolOf func(addr.Line) mem.PoolID) Classifier {
	return func(core int, line addr.Line) VCKey {
		return VCKey{Core: int16(core), Pool: poolOf(line)}
	}
}

// PoolShared builds a Whirlpool classifier for parallel apps: each pool
// gets one process-shared VC, placed near the cores that use it.
func PoolShared(poolOf func(addr.Line) mem.PoolID) Classifier {
	return func(_ int, line addr.Line) VCKey {
		return VCKey{Core: SharedVC, Pool: poolOf(line)}
	}
}
