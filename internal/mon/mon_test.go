package mon

import (
	"testing"

	"whirlpool/internal/addr"
	"whirlpool/internal/stats"
)

func TestMonitorCountsAccesses(t *testing.T) {
	m := New(1024, 65536, 4)
	for i := 0; i < 1000; i++ {
		m.Access(2, addr.Line(i), i%3 == 0)
	}
	if m.Accesses != 1000 {
		t.Fatalf("accesses=%d", m.Accesses)
	}
	if m.Writes == 0 {
		t.Fatal("writes not counted")
	}
	if m.CoreAccess[2] != 1000 || m.CoreAccess[0] != 0 {
		t.Fatalf("core attribution wrong: %v", m.CoreAccess)
	}
}

func TestMonitorCurveNormalized(t *testing.T) {
	m := New(1024, 65536, 4)
	rng := stats.NewRng(3)
	for i := 0; i < 50000; i++ {
		m.Access(0, addr.Line(rng.Uint64n(4096)), false)
	}
	c := m.Curve()
	// M[0] is pinned to the true access count: sampling bias calibrated.
	if c.M[0] != float64(m.Accesses) {
		t.Fatalf("M[0]=%v, want %v", c.M[0], float64(m.Accesses))
	}
	// The 4096-line working set fits by ~8192 lines: misses near zero.
	if got := c.At(8192); got > float64(m.Accesses)/10 {
		t.Fatalf("misses at 8192 lines = %v; working set should fit", got)
	}
}

func TestMonitorStreamingLooksFlat(t *testing.T) {
	m := New(1024, 65536, 4)
	for i := 0; i < 200000; i++ {
		m.Access(0, addr.Line(i), false) // never reuses
	}
	c := m.Curve()
	// Streaming: misses stay near the access count at every size.
	if got := c.At(65536); got < 0.9*float64(m.Accesses) {
		t.Fatalf("streaming curve dropped to %v of %v", got, float64(m.Accesses))
	}
}

func TestMonitorIntervalReset(t *testing.T) {
	m := New(1024, 65536, 4)
	rng := stats.NewRng(7)
	for i := 0; i < 30000; i++ {
		m.Access(0, addr.Line(rng.Uint64n(2048)), false)
	}
	m.ResetInterval()
	if m.Accesses != 0 || m.CoreAccess[0] != 0 {
		t.Fatal("interval counters not reset")
	}
	// Recency survives: the next interval's accesses to the same lines
	// should show small distances (not cold).
	for i := 0; i < 30000; i++ {
		m.Access(0, addr.Line(rng.Uint64n(2048)), false)
	}
	c := m.Curve()
	if got := c.At(4096); got > float64(m.Accesses)/20 {
		t.Fatalf("recency lost across intervals: %v misses at 4096 lines", got)
	}
}
