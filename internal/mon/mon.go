// Package mon implements the runtime utility monitors (GMONs) each
// virtual cache carries: hash-sampled stack-distance monitors that produce
// a miss-rate curve per reconfiguration interval, plus per-core access
// weights used to place shared VCs.
package mon

import (
	"whirlpool/internal/addr"
	"whirlpool/internal/mrc"
)

// SampleShift subsamples 1-in-16 lines. Hardware GMONs use coarser
// sampling but calibrate against exact access counters; 1/16 gives our
// software monitors comparable accuracy at negligible simulation cost.
const SampleShift = 4

// Monitor tracks one VC's access behaviour during an interval.
type Monitor struct {
	prof *mrc.Profiler

	// Interval counters.
	Accesses   uint64
	Writes     uint64
	CoreAccess []uint64 // per-core demand accesses (placement centroid)
}

// New creates a monitor whose curves span maxLines of capacity in buckets
// of gran lines.
func New(gran, maxLines uint64, nCores int) *Monitor {
	buckets := int((maxLines + gran - 1) / gran)
	return &Monitor{
		prof:       mrc.NewProfiler(gran, buckets, SampleShift),
		CoreAccess: make([]uint64, nCores),
	}
}

// Access records a demand access from core to line l.
func (m *Monitor) Access(core int, l addr.Line, write bool) {
	m.Accesses++
	if write {
		m.Writes++
	}
	m.CoreAccess[core]++
	m.prof.Access(l)
}

// Curve returns the interval's miss-rate curve (misses per interval as a
// function of capacity). The sampled curve is normalized so that
// M[0] equals the true access count — at zero capacity every access
// misses by definition, which calibrates away sampling bias exactly as
// hardware GMONs calibrate way counters against the access counter.
func (m *Monitor) Curve() mrc.Curve {
	c := m.prof.Curve()
	c.Accesses = float64(m.Accesses)
	if len(c.M) > 0 && c.M[0] > 0 && m.Accesses > 0 {
		scale := c.Accesses / c.M[0]
		for i := range c.M {
			c.M[i] *= scale
		}
	}
	return c
}

// ResetInterval clears interval counters while keeping recency state warm
// (hardware monitors only reset counters at reconfiguration).
func (m *Monitor) ResetInterval() {
	m.Accesses, m.Writes = 0, 0
	for i := range m.CoreAccess {
		m.CoreAccess[i] = 0
	}
	m.prof.Reset()
}
