module whirlpool

go 1.24
