# Local dev and CI invoke the exact same commands: .github/workflows/ci.yml
# runs `make ci`. Keep the two in sync by editing only this file.

GO ?= go

.PHONY: build examples test race vet fmt fmt-check bench smoke ci

build:
	$(GO) build ./...

# ./... already covers examples/, but an explicit target keeps example
# drift visible as its own CI step.
examples:
	$(GO) build ./examples/...

test:
	$(GO) test ./...

# The concurrency hot spots: the sweep worker pool and the per-app
# once-cache in the experiments harness.
race:
	$(GO) test -race -count=1 ./internal/experiments/...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# One iteration of every benchmark: catches benchmarks that no longer
# compile or crash, without benchmarking anything for real.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# End-to-end CLI smoke: the spec engine, the sweep runner, and the
# error paths CI asserts on (bad flags must exit non-zero).
smoke:
	$(GO) run ./cmd/whirlsim -app delaunay -scheme whirlpool -scale 0.05
	$(GO) run ./cmd/whirlsim -spec specs/phase-shift.json -app phaser -scheme whirlpool -scale 0.05
	$(GO) run ./cmd/whirlsim -spec specs/phase-shift.json -app phaser -scheme jigsaw -scale 0.05
	$(GO) run ./cmd/whirlsim -spec specs/multitenant-kv.json -list | grep -q 'kv-hot (spec file)'
	$(GO) run ./cmd/whirlsim -list | grep -q 'whirlpool (Whirlpool)'
	$(GO) run ./cmd/whirlsim -app delaunay -scheme snuca-lru -chip 6x6:4 -scale 0.05
	$(GO) run ./cmd/whirlsweep -spec specs/multitenant-kv.json -mix kv2-dense -schemes whirlpool -scale 0.05 -q
	$(GO) run ./cmd/whirlsweep -apps delaunay,MIS,mcf -scale 0.05 -format csv -q | grep -q '^delaunay,whirlpool,'
	$(GO) run ./cmd/whirlsweep -spec specs/streaming-mix.json -mix stream-vs-rank -schemes snuca-lru,whirlpool -scale 0.05 -q
	$(GO) run ./cmd/whirlsweep -dump-builtin | diff -q - specs/builtin.json
	! $(GO) run ./cmd/whirlsim -scheme bogus -scale 0.05 2>/dev/null
	! $(GO) run ./cmd/whirlsim -spec no-such-file.json 2>/dev/null
	! $(GO) run ./cmd/whirlsim -app nosuchapp -scale 0.05 2>/dev/null
	! $(GO) run ./cmd/whirlsweep -apps nosuchapp -q 2>/dev/null
	! $(GO) run ./cmd/whirlsim -chip 1x1 -scale 0.05 2>/dev/null
	@echo "smoke OK"

ci: build examples vet fmt-check test race bench smoke
