# Local dev and CI invoke the exact same commands: .github/workflows/ci.yml
# runs `make ci`. Keep the two in sync by editing only this file.

GO ?= go

# Build identity, stamped into every binary's -version output via the
# shared cliutil helper (CI runs these same targets, so release and CI
# builds report the commit they were built from).
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
LDFLAGS := -ldflags "-X whirlpool/internal/cliutil.buildVersion=$(VERSION)"

.PHONY: build examples test race vet lint fmt fmt-check bench bench-json bench-delta smoke trace-smoke serve-smoke dist-smoke fleet-smoke load-smoke obs-smoke ci

build:
	$(GO) build $(LDFLAGS) ./...

# ./... already covers examples/, but an explicit target keeps example
# drift visible as its own CI step.
examples:
	$(GO) build ./examples/...

test:
	$(GO) test ./...

# The concurrency hot spots: the sweep worker pool (same-app batching,
# per-worker sim.Runner reuse) and the per-app once-cache in the
# experiments harness, per-goroutine Runners and concurrent mapped-trace
# cursors in the simulator and trace codec, the result store's
# concurrent writers, the daemon's job pool + SSE broadcast, the
# distributed dispatcher's shard fan-out, the fleet registry's
# heartbeat/expiry races, the load generator's worker/collector fan-in,
# and the tracer's concurrent span recording.
race:
	$(GO) test -race -count=1 -timeout 20m ./internal/experiments/... ./internal/sim/ ./internal/trace/ ./internal/results/ ./internal/server/ ./internal/dispatch/ ./internal/fleet/ ./internal/traffic/ ./internal/obs/

vet:
	$(GO) vet ./...

# The repo's own analyzers (cmd/whirlvet): determinism of the compute
# path, //whirl:zeroalloc hot-path contracts, envelope-only API errors,
# lowercase_snake log/span keys, and mutex discipline on the
# schemes/workloads/fleet registries. New findings fail; grandfathered
# ones live in lint.baseline.json (empty today — keep it that way).
# See docs/lint.md.
lint:
	$(GO) run ./cmd/whirlvet ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# One iteration of every benchmark: catches benchmarks that no longer
# compile or crash, without benchmarking anything for real.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# The perf trajectory: trace-pipeline benchmarks (filter, cursor replay,
# codec, warm vs cold harness load, one sim pass), plus the observability
# alloc guards (span emission, the traced sweep loop), rendered as
# BENCH_trace.json. The raw benchmark lines ride along inside the JSON,
# so benchstat can compare two snapshots:
#   jq -r '.raw[]' BENCH_trace.json | benchstat /dev/stdin
bench-json:
	$(GO) test -run '^$$' -bench 'FilterPrivate|TraceCursor|TraceCodec|TraceMmap|HarnessTrace|SimRun|SweepBatched|SpanEmit|SweepSpan' \
		-benchmem -benchtime 200ms -count 1 ./internal/trace/ ./internal/sim/ ./internal/experiments/ ./internal/obs/ \
		| $(GO) run ./cmd/whirltool benchjson > BENCH_trace.json
	@echo "wrote BENCH_trace.json"

# Regression gate over the bench trajectory: compares the fresh
# BENCH_trace.json against the committed baseline (HEAD) and fails when
# a guarded decode-path benchmark (TraceCodec/TraceCursor/TraceMmap/
# FilterPrivate) regressed >20% in ns/op or allocs/op. Opt out of a
# known-noisy run with BENCH_DELTA_SKIP=1.
bench-delta:
	./scripts/bench-delta.sh

# End-to-end CLI smoke: the spec engine, the sweep runner, and the
# error paths CI asserts on (bad flags must exit non-zero).
smoke:
	$(GO) run ./cmd/whirlsim -app delaunay -scheme whirlpool -scale 0.05
	$(GO) run ./cmd/whirlsim -spec specs/phase-shift.json -app phaser -scheme whirlpool -scale 0.05
	$(GO) run ./cmd/whirlsim -spec specs/phase-shift.json -app phaser -scheme jigsaw -scale 0.05
	$(GO) run ./cmd/whirlsim -spec specs/multitenant-kv.json -list | grep -q 'kv-hot (spec file)'
	$(GO) run ./cmd/whirlsim -list | grep -q 'whirlpool (Whirlpool)'
	$(GO) run ./cmd/whirlsim -app delaunay -scheme snuca-lru -chip 6x6:4 -scale 0.05
	$(GO) run ./cmd/whirlsweep -spec specs/multitenant-kv.json -mix kv2-dense -schemes whirlpool -scale 0.05 -q
	$(GO) run ./cmd/whirlsweep -apps delaunay,MIS,mcf -scale 0.05 -format csv -q | grep -q '^delaunay,whirlpool,'
	$(GO) run ./cmd/whirlsweep -spec specs/streaming-mix.json -mix stream-vs-rank -schemes snuca-lru,whirlpool -scale 0.05 -q
	$(GO) run ./cmd/whirlsweep -dump-builtin | diff -q - specs/builtin.json
	! $(GO) run ./cmd/whirlsim -scheme bogus -scale 0.05 2>/dev/null
	! $(GO) run ./cmd/whirlsim -spec no-such-file.json 2>/dev/null
	! $(GO) run ./cmd/whirlsim -app nosuchapp -scale 0.05 2>/dev/null
	! $(GO) run ./cmd/whirlsweep -apps nosuchapp -q 2>/dev/null
	! $(GO) run ./cmd/whirlsim -chip 1x1 -scale 0.05 2>/dev/null
	$(GO) run $(LDFLAGS) ./cmd/whirlsim -version | grep -q '^whirlsim '
	$(GO) run ./cmd/whirlsweep -version | grep -q '^whirlsweep dev'
	$(GO) run ./cmd/whirlbench -version | grep -q '^whirlbench '
	$(GO) run ./cmd/whirltool -version | grep -q '^whirltool '
	$(GO) run ./cmd/whirld -version | grep -q '^whirld '
	$(GO) run $(LDFLAGS) ./cmd/whirlvet -version | grep -q '^whirlvet '
	! $(GO) run ./cmd/whirld -store '' 2>/dev/null
	! $(GO) run ./cmd/whirld -workers not-a-url 2>/dev/null
	! $(GO) run ./cmd/whirld -workers 8 -parallel 4 2>/dev/null
	@echo "smoke OK"

# Record/replay smoke: a trace recorded with `whirltool trace record`
# and replayed through a "trace"-sourced spec app must reproduce the
# direct run bit-for-bit (MPKI and the rest of the report columns), and
# a warm -trace-cache sweep must regenerate zero traces.
trace-smoke:
	rm -rf .trace-smoke && mkdir -p .trace-smoke
	$(GO) run ./cmd/whirltool trace record -app delaunay -scale 0.05 -o .trace-smoke/delaunay.wtrc
	$(GO) run ./cmd/whirltool trace info .trace-smoke/delaunay.wtrc
	$(GO) run ./cmd/whirltool trace cat -n 3 .trace-smoke/delaunay.wtrc >/dev/null
	printf '{"name":"trace-smoke","apps":[{"name":"dt-rec","source":"trace","trace":"delaunay.wtrc"}]}' \
		> .trace-smoke/spec.json
	$(GO) run ./cmd/whirlsim -spec .trace-smoke/spec.json -app dt-rec -scheme jigsaw -scale 0.05 2>/dev/null \
		| awk 'NR==2{print "jigsaw", $$5}' > .trace-smoke/replay.txt
	$(GO) run ./cmd/whirlsim -spec .trace-smoke/spec.json -app dt-rec -scheme snuca-lru -scale 0.05 2>/dev/null \
		| awk 'NR==2{print "snuca", $$5}' >> .trace-smoke/replay.txt
	$(GO) run ./cmd/whirlsim -app delaunay -scheme jigsaw -scale 0.05 \
		| awk 'NR==2{print "jigsaw", $$5}' > .trace-smoke/direct.txt
	$(GO) run ./cmd/whirlsim -app delaunay -scheme snuca-lru -scale 0.05 \
		| awk 'NR==2{print "snuca", $$5}' >> .trace-smoke/direct.txt
	diff .trace-smoke/replay.txt .trace-smoke/direct.txt
	$(GO) run ./cmd/whirlsweep -apps delaunay,MIS -schemes jigsaw -scale 0.05 \
		-trace-cache .trace-smoke/cache -q
	$(GO) run ./cmd/whirlsweep -apps delaunay,MIS -schemes jigsaw -scale 0.05 \
		-trace-cache .trace-smoke/cache -o /dev/null 2>&1 \
		| grep -q 'traces: 0 generated'
	rm -rf .trace-smoke
	@echo "trace-smoke OK"

# Serving smoke: start whirld, submit a sweep over HTTP, await the SSE
# stream, diff the rows (timing stripped) against a direct whirlsweep
# run, then resubmit against the warm store and assert zero
# re-simulations. See scripts/serve-smoke.sh.
serve-smoke:
	GO="$(GO)" sh scripts/serve-smoke.sh

# Distributed smoke: a coordinator whirld shards sweeps across two
# worker whirlds sharing one result store; the merged grid must be
# bit-identical to a single-node run, a warm resubmit must re-simulate
# nothing on any node, and a worker killed mid-sweep must not lose the
# job. See scripts/dist-smoke.sh.
dist-smoke:
	GO="$(GO)" sh scripts/dist-smoke.sh

# Elastic-fleet smoke: workers join a coordinator by registration alone
# (-join, no -workers flag), a third worker joining mid-sweep receives
# cells, and a worker killed -9 mid-sweep has its lease expire and its
# cells re-route to the survivors — with the merged grid bit-identical
# to a single-node run. See scripts/fleet-smoke.sh.
fleet-smoke:
	GO="$(GO)" sh scripts/fleet-smoke.sh

# Serving-SLO smoke: whirltool load drives a warm whirld with a mixed
# traffic spec (throughput floors + p99 SLOs fail the run when
# breached), then overdrives /v1/results past its concurrency limit and
# asserts it sheds 429 + Retry-After while other endpoints keep
# serving. See scripts/load-smoke.sh.
load-smoke:
	GO="$(GO)" sh scripts/load-smoke.sh

# Observability smoke: a 2-worker distributed sweep must collect as ONE
# trace tree (single root, both workers' spans stitched under the
# coordinator's job span) fetched from /v1/jobs/{id}/trace and rendered
# by `whirltool spans`; /metrics?format=prom must lint as valid
# Prometheus exposition; pprof serves on -debug-addr only. See
# scripts/obs-smoke.sh.
obs-smoke:
	GO="$(GO)" sh scripts/obs-smoke.sh

ci: build examples vet lint fmt-check test race bench smoke trace-smoke serve-smoke dist-smoke fleet-smoke load-smoke obs-smoke
