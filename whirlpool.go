// Package whirlpool is a library reproduction of "Whirlpool: Improving
// Dynamic Cache Management with Static Data Classification" (Mukkara,
// Beckmann & Sanchez, ASPLOS 2016).
//
// It provides:
//
//   - A pool-based memory allocator over a simulated address space
//     (Allocator), the paper's pool_create / pool_malloc API.
//   - A NUCA multicore simulator with a registry of last-level cache
//     organizations: the paper's six — S-NUCA (LRU and DRRIP),
//     IdealSPD, Awasthi et al., Jigsaw, and Whirlpool itself — plus
//     any registered at runtime.
//   - WhirlTool, the profile-guided automatic data classifier.
//   - PaWS, partitioned work-stealing for task-parallel workloads.
//   - The paper's benchmark suite as synthetic workloads, and runners
//     that regenerate every table and figure in the evaluation.
//
// Quick start:
//
//	rep, _ := whirlpool.New("delaunay", whirlpool.Whirlpool).Run()
//	base, _ := whirlpool.New("delaunay", whirlpool.Jigsaw).Run()
//	fmt.Printf("speedup: %.1f%%\n", 100*(base.Cycles/rep.Cycles-1))
//
// Experiments are configured with functional options (see New and the
// With* options in experiment.go); the original Run/Compare helpers
// remain as shims.
package whirlpool

import (
	"fmt"
	"sync"

	"whirlpool/internal/experiments"
	"whirlpool/internal/paws"
	"whirlpool/internal/schemes"
	"whirlpool/internal/sim"
	"whirlpool/internal/spec"
	"whirlpool/internal/workloads"
)

// Scheme names a last-level cache organization by its stable
// identifier. Any identifier in Schemes() is runnable, including
// schemes registered outside this package.
type Scheme string

// The paper's six evaluated schemes.
const (
	SNUCALRU   Scheme = "snuca-lru"
	SNUCADRRIP Scheme = "snuca-drrip"
	IdealSPD   Scheme = "idealspd"
	Awasthi    Scheme = "awasthi"
	Jigsaw     Scheme = "jigsaw"
	Whirlpool  Scheme = "whirlpool"
)

// Schemes lists every registered scheme: the paper's six in
// presentation order, then any registered at runtime.
func Schemes() []Scheme {
	ids := schemes.KindIDs()
	out := make([]Scheme, len(ids))
	for i, id := range ids {
		out[i] = Scheme(id)
	}
	return out
}

// SchemeLabel returns the figure label for a scheme ("Whirlpool",
// "DRRIP", ...), or the raw identifier if unregistered.
func SchemeLabel(s Scheme) string { return schemes.Kind(s).String() }

func (s Scheme) kind() (schemes.Kind, error) {
	k, err := schemes.ParseKind(string(s))
	if err != nil {
		return "", fmt.Errorf("whirlpool: unknown scheme %q (valid: %v)", s, Schemes())
	}
	return k, nil
}

// Options tune a run the legacy way. The zero value (or nil) uses the
// defaults the experiments use. New callers should prefer New with
// functional options, which also reach the harness seed, the reconfig
// period, chip topology, contexts, and observers.
type Options struct {
	// Scale multiplies workload length (default 1.0).
	Scale float64
	// Pools overrides data classification with explicit groups of
	// structure indices. Nil uses the app's manual classification
	// (Table 2), or one pool if the app was never ported.
	Pools [][]int
	// AutoClassify runs WhirlTool (k pools) instead of manual pools.
	AutoClassify int
	// DisableBypass turns off VC bypassing (ablation).
	DisableBypass bool
}

// options converts the legacy struct into functional options.
func (o *Options) options() []Option {
	if o == nil {
		return nil
	}
	var out []Option
	if o.Scale != 0 {
		out = append(out, WithScale(o.Scale))
	}
	if o.Pools != nil {
		out = append(out, WithPools(o.Pools...))
	}
	if o.AutoClassify > 0 {
		out = append(out, WithAutoClassify(o.AutoClassify))
	}
	if o.DisableBypass {
		out = append(out, WithoutBypass())
	}
	return out
}

// Report summarizes one simulation run.
type Report struct {
	App    string
	Scheme Scheme
	// Cycles to complete the measured pass; IPC = Instrs/Cycles.
	Cycles float64
	Instrs float64
	IPC    float64
	// Data-movement energy in picojoules, by component.
	EnergyPJ        float64
	NetworkEnergyPJ float64
	BankEnergyPJ    float64
	MemoryEnergyPJ  float64
	// LLC behaviour.
	LLCAccesses uint64
	Hits        uint64
	Misses      uint64
	Bypasses    uint64
	APKI        float64
	MPKI        float64
}

func report(app string, s Scheme, r *sim.Result) Report {
	return Report{
		App:             app,
		Scheme:          s,
		Cycles:          float64(r.Cycles),
		Instrs:          float64(r.Instrs),
		IPC:             float64(r.Instrs) / float64(r.Cycles),
		EnergyPJ:        r.Energy.Total(),
		NetworkEnergyPJ: r.Energy.NetworkPJ,
		BankEnergyPJ:    r.Energy.BankPJ,
		MemoryEnergyPJ:  r.Energy.MemoryPJ,
		LLCAccesses:     r.Demand,
		Hits:            r.Hits,
		Misses:          r.Misses,
		Bypasses:        r.Bypasses,
		APKI:            r.TotalAccessesAPKI(),
		MPKI:            r.MPKI(),
	}
}

// harnessKey is the full harness configuration: harnesses are cached
// per key so repeated runs share traces, and a run with a different
// seed or reconfig period never silently reuses a mismatched harness.
type harnessKey struct {
	scale    float64
	seed     uint64
	reconfig uint64
}

func (k harnessKey) withDefaults() harnessKey {
	if k.scale == 0 {
		k.scale = 1.0
	}
	if k.seed == 0 {
		k.seed = experiments.DefaultSeed
	}
	if k.reconfig == 0 {
		k.reconfig = experiments.DefaultReconfigCycles
	}
	return k
}

var (
	harnessMu     sync.Mutex
	harnesses     = map[harnessKey]*experiments.Harness{}
	traceCacheDir string
)

func harnessFor(k harnessKey) *experiments.Harness {
	k = k.withDefaults()
	harnessMu.Lock()
	defer harnessMu.Unlock()
	h, ok := harnesses[k]
	if !ok {
		h = experiments.NewHarness(k.scale)
		h.Seed = k.seed
		h.ReconfigCycles = k.reconfig
		h.CacheDir = traceCacheDir
		harnesses[k] = h
	}
	return h
}

// SetTraceCacheDir points every harness (current and future) at an
// on-disk trace cache: generated traces are written there as
// content-addressed .wtrc files and streamed back by later runs and
// processes instead of being regenerated. Empty disables caching for
// future harnesses. The cache is safe to share between concurrent
// processes (writes are atomic) and to delete at any time.
func SetTraceCacheDir(dir string) {
	harnessMu.Lock()
	defer harnessMu.Unlock()
	traceCacheDir = dir
	//whirl:unordered same cache dir applied to every harness; order-independent
	for _, h := range harnesses {
		h.SetCacheDir(dir)
	}
}

// TraceCacheStats aggregates trace provenance over every harness: how
// many traces were generated in-process vs streamed from the trace
// cache.
func TraceCacheStats() (built, fromCache int64) {
	harnessMu.Lock()
	defer harnessMu.Unlock()
	//whirl:unordered commutative sums over every harness
	for _, h := range harnesses {
		s := h.CacheStats()
		built += s.Builds
		fromCache += s.DiskHits
	}
	return built, fromCache
}

// invalidateApps drops the named apps from every cached harness, so
// redefined workloads rebuild their traces on next use.
func invalidateApps(names []string) {
	harnessMu.Lock()
	defer harnessMu.Unlock()
	//whirl:unordered same invalidation applied to every harness; order-independent
	for _, h := range harnesses {
		h.Invalidate(names...)
	}
}

// Apps lists every runnable single-threaded app: the built-in suite
// (15 SPEC-like + 16 PBBS-like apps) plus any apps registered from
// spec files (LoadSpecFile).
func Apps() []string { return workloads.Names() }

// SpecApps lists only the apps registered from spec files.
func SpecApps() []string { return workloads.RegisteredNames() }

// SpecInfo summarizes a loaded spec file.
type SpecInfo struct {
	// Name labels the spec set (from the file, or the path).
	Name string
	// Apps are the registered app names, now runnable via Run.
	Apps []string
	// Mixes maps each mix name to its member apps.
	Mixes map[string][]string
}

// LoadSpecFile parses a declarative workload-spec file (see
// docs/workload-specs.md) and registers its apps, making them runnable
// by name exactly like built-in suite apps. Apps with built-in names
// replace the built-in definition; cached traces for redefined apps
// are invalidated, so a replacement takes effect even after the app
// has already run.
func LoadSpecFile(path string) (*SpecInfo, error) {
	f, err := spec.Load(path)
	if err != nil {
		return nil, err
	}
	apps, err := f.Register()
	if err != nil {
		return nil, err
	}
	invalidateApps(apps)
	info := &SpecInfo{Name: f.Name, Apps: apps, Mixes: map[string][]string{}}
	if info.Name == "" {
		info.Name = path
	}
	for _, m := range f.Mixes {
		info.Mixes[m.Name] = m.Apps
	}
	return info, nil
}

// ParallelApps lists the task-parallel suite (Fig 13).
func ParallelApps() []string {
	var out []string
	for _, s := range paws.Specs() {
		out = append(out, s.Name)
	}
	return out
}

// Run simulates one app under one scheme on the 4-core chip and returns
// its report. opt may be nil. It is a shim over New(...).Run().
func Run(app string, scheme Scheme, opt *Options) (Report, error) {
	return New(app, scheme, opt.options()...).Run()
}

// Compare runs an app under every registered scheme. It is a shim over
// New(...).Compare().
func Compare(app string, opt *Options) (map[Scheme]Report, error) {
	return New(app, "", opt.options()...).Compare()
}

// AutoClassify runs WhirlTool on an app and returns the discovered pools
// as groups of data-structure names. It is a shim over
// New(...).Classify(pools).
func AutoClassify(app string, pools int, opt *Options) ([][]string, error) {
	return New(app, Whirlpool, opt.options()...).Classify(pools)
}

// ParallelVariant names a Fig 13 configuration.
type ParallelVariant string

// Fig 13's four configurations.
const (
	ParSNUCA         ParallelVariant = "snuca"
	ParJigsaw        ParallelVariant = "jigsaw"
	ParJigsawPaWS    ParallelVariant = "jigsaw+paws"
	ParWhirlpoolPaWS ParallelVariant = "whirlpool+paws"
)

// RunParallel simulates a task-parallel app on the 16-core chip. It is
// a shim over the Experiment machinery, so parallel runs share the
// harness cache with single-app runs at the same configuration.
func RunParallel(app string, variant ParallelVariant, opt *Options) (Report, error) {
	var v experiments.ParallelVariant
	switch variant {
	case ParSNUCA:
		v = experiments.VariantSNUCA
	case ParJigsaw:
		v = experiments.VariantJigsaw
	case ParJigsawPaWS:
		v = experiments.VariantJigsawPaWS
	case ParWhirlpoolPaWS:
		v = experiments.VariantWhirlpoolPaWS
	default:
		return Report{}, fmt.Errorf("whirlpool: unknown variant %q", variant)
	}
	if _, ok := paws.SpecByName(app); !ok {
		return Report{}, fmt.Errorf("whirlpool: unknown parallel app %q (see ParallelApps())", app)
	}
	return New(app, Scheme(string(variant)), opt.options()...).runParallelVariant(v, Scheme(string(variant)))
}
