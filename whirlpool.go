// Package whirlpool is a library reproduction of "Whirlpool: Improving
// Dynamic Cache Management with Static Data Classification" (Mukkara,
// Beckmann & Sanchez, ASPLOS 2016).
//
// It provides:
//
//   - A pool-based memory allocator over a simulated address space
//     (Allocator), the paper's pool_create / pool_malloc API.
//   - A NUCA multicore simulator with six last-level cache organizations:
//     S-NUCA (LRU and DRRIP), IdealSPD, Awasthi et al., Jigsaw, and
//     Whirlpool itself.
//   - WhirlTool, the profile-guided automatic data classifier.
//   - PaWS, partitioned work-stealing for task-parallel workloads.
//   - The paper's benchmark suite as synthetic workloads, and runners
//     that regenerate every table and figure in the evaluation.
//
// Quick start:
//
//	rep, _ := whirlpool.Run("delaunay", whirlpool.Whirlpool, nil)
//	base, _ := whirlpool.Run("delaunay", whirlpool.Jigsaw, nil)
//	fmt.Printf("speedup: %.1f%%\n", 100*(base.Cycles/rep.Cycles-1))
package whirlpool

import (
	"fmt"
	"sync"

	"whirlpool/internal/experiments"
	"whirlpool/internal/paws"
	"whirlpool/internal/schemes"
	"whirlpool/internal/sim"
	"whirlpool/internal/spec"
	"whirlpool/internal/workloads"
)

// Scheme names a last-level cache organization.
type Scheme string

// The six evaluated schemes.
const (
	SNUCALRU   Scheme = "snuca-lru"
	SNUCADRRIP Scheme = "snuca-drrip"
	IdealSPD   Scheme = "idealspd"
	Awasthi    Scheme = "awasthi"
	Jigsaw     Scheme = "jigsaw"
	Whirlpool  Scheme = "whirlpool"
)

// Schemes lists all schemes in the paper's presentation order.
func Schemes() []Scheme {
	return []Scheme{SNUCALRU, SNUCADRRIP, IdealSPD, Awasthi, Jigsaw, Whirlpool}
}

func (s Scheme) kind() (schemes.Kind, error) {
	k, err := schemes.ParseKind(string(s))
	if err != nil {
		return 0, fmt.Errorf("whirlpool: unknown scheme %q (valid: %v)", s, Schemes())
	}
	return k, nil
}

// Options tune a run. The zero value (or nil) uses the defaults the
// experiments use.
type Options struct {
	// Scale multiplies workload length (default 1.0).
	Scale float64
	// Pools overrides data classification with explicit groups of
	// structure indices. Nil uses the app's manual classification
	// (Table 2), or one pool if the app was never ported.
	Pools [][]int
	// AutoClassify runs WhirlTool (k pools) instead of manual pools.
	AutoClassify int
	// DisableBypass turns off VC bypassing (ablation).
	DisableBypass bool
}

// Report summarizes one simulation run.
type Report struct {
	App    string
	Scheme Scheme
	// Cycles to complete the measured pass; IPC = Instrs/Cycles.
	Cycles float64
	Instrs float64
	IPC    float64
	// Data-movement energy in picojoules, by component.
	EnergyPJ        float64
	NetworkEnergyPJ float64
	BankEnergyPJ    float64
	MemoryEnergyPJ  float64
	// LLC behaviour.
	LLCAccesses uint64
	Hits        uint64
	Misses      uint64
	Bypasses    uint64
	APKI        float64
	MPKI        float64
}

func report(app string, s Scheme, r *sim.Result) Report {
	return Report{
		App:             app,
		Scheme:          s,
		Cycles:          float64(r.Cycles),
		Instrs:          float64(r.Instrs),
		IPC:             float64(r.Instrs) / float64(r.Cycles),
		EnergyPJ:        r.Energy.Total(),
		NetworkEnergyPJ: r.Energy.NetworkPJ,
		BankEnergyPJ:    r.Energy.BankPJ,
		MemoryEnergyPJ:  r.Energy.MemoryPJ,
		LLCAccesses:     r.Demand,
		Hits:            r.Hits,
		Misses:          r.Misses,
		Bypasses:        r.Bypasses,
		APKI:            r.TotalAccessesAPKI(),
		MPKI:            r.MPKI(),
	}
}

// harnesses are cached per scale so repeated Run calls share traces.
var (
	harnessMu sync.Mutex
	harnesses = map[float64]*experiments.Harness{}
)

func harnessFor(scale float64) *experiments.Harness {
	if scale == 0 {
		scale = 1.0
	}
	harnessMu.Lock()
	defer harnessMu.Unlock()
	h, ok := harnesses[scale]
	if !ok {
		h = experiments.NewHarness(scale)
		harnesses[scale] = h
	}
	return h
}

// Apps lists every runnable single-threaded app: the built-in suite
// (15 SPEC-like + 16 PBBS-like apps) plus any apps registered from
// spec files (LoadSpecFile).
func Apps() []string { return workloads.Names() }

// SpecApps lists only the apps registered from spec files.
func SpecApps() []string { return workloads.RegisteredNames() }

// SpecInfo summarizes a loaded spec file.
type SpecInfo struct {
	// Name labels the spec set (from the file, or the path).
	Name string
	// Apps are the registered app names, now runnable via Run.
	Apps []string
	// Mixes maps each mix name to its member apps.
	Mixes map[string][]string
}

// LoadSpecFile parses a declarative workload-spec file (see
// docs/workload-specs.md) and registers its apps, making them runnable
// by name exactly like built-in suite apps. Apps with built-in names
// replace the built-in definition. Load spec files before the first Run
// of an app they redefine: built traces are cached per scale, and a
// replacement registered afterwards does not invalidate them.
func LoadSpecFile(path string) (*SpecInfo, error) {
	f, err := spec.Load(path)
	if err != nil {
		return nil, err
	}
	apps, err := f.Register()
	if err != nil {
		return nil, err
	}
	info := &SpecInfo{Name: f.Name, Apps: apps, Mixes: map[string][]string{}}
	if info.Name == "" {
		info.Name = path
	}
	for _, m := range f.Mixes {
		info.Mixes[m.Name] = m.Apps
	}
	return info, nil
}

// ParallelApps lists the task-parallel suite (Fig 13).
func ParallelApps() []string {
	var out []string
	for _, s := range paws.Specs() {
		out = append(out, s.Name)
	}
	return out
}

// Run simulates one app under one scheme on the 4-core chip and returns
// its report. opt may be nil.
func Run(app string, scheme Scheme, opt *Options) (Report, error) {
	k, err := scheme.kind()
	if err != nil {
		return Report{}, err
	}
	if _, ok := workloads.ByName(app); !ok {
		return Report{}, fmt.Errorf("whirlpool: unknown app %q (see Apps())", app)
	}
	o := Options{}
	if opt != nil {
		o = *opt
	}
	h := harnessFor(o.Scale)
	ro := experiments.RunOptions{Grouping: o.Pools, NoBypass: o.DisableBypass}
	if o.AutoClassify > 0 && scheme == Whirlpool {
		ro.Grouping = h.WhirlToolGrouping(app, o.AutoClassify, true)
	}
	r := h.RunSingle(app, k, ro)
	return report(app, scheme, r), nil
}

// Compare runs an app under every scheme.
func Compare(app string, opt *Options) (map[Scheme]Report, error) {
	out := make(map[Scheme]Report, 6)
	for _, s := range Schemes() {
		r, err := Run(app, s, opt)
		if err != nil {
			return nil, err
		}
		out[s] = r
	}
	return out, nil
}

// AutoClassify runs WhirlTool on an app and returns the discovered pools
// as groups of data-structure names.
func AutoClassify(app string, pools int, opt *Options) ([][]string, error) {
	spec, ok := workloads.ByName(app)
	if !ok {
		return nil, fmt.Errorf("whirlpool: unknown app %q", app)
	}
	o := Options{}
	if opt != nil {
		o = *opt
	}
	h := harnessFor(o.Scale)
	groups := h.WhirlToolGrouping(app, pools, true)
	out := make([][]string, len(groups))
	for i, g := range groups {
		for _, si := range g {
			if si >= 0 && si < len(spec.Structs) {
				out[i] = append(out[i], spec.Structs[si].Name)
			}
		}
	}
	return out, nil
}

// ParallelVariant names a Fig 13 configuration.
type ParallelVariant string

// Fig 13's four configurations.
const (
	ParSNUCA         ParallelVariant = "snuca"
	ParJigsaw        ParallelVariant = "jigsaw"
	ParJigsawPaWS    ParallelVariant = "jigsaw+paws"
	ParWhirlpoolPaWS ParallelVariant = "whirlpool+paws"
)

// RunParallel simulates a task-parallel app on the 16-core chip.
func RunParallel(app string, variant ParallelVariant, opt *Options) (Report, error) {
	var v experiments.ParallelVariant
	switch variant {
	case ParSNUCA:
		v = experiments.VariantSNUCA
	case ParJigsaw:
		v = experiments.VariantJigsaw
	case ParJigsawPaWS:
		v = experiments.VariantJigsawPaWS
	case ParWhirlpoolPaWS:
		v = experiments.VariantWhirlpoolPaWS
	default:
		return Report{}, fmt.Errorf("whirlpool: unknown variant %q", variant)
	}
	o := Options{}
	if opt != nil {
		o = *opt
	}
	h := harnessFor(o.Scale)
	r := h.RunParallel(app, v)
	return report(app, Scheme(string(variant)), r), nil
}
