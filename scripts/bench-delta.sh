#!/bin/sh
# bench-delta.sh — fail loudly when the trace decode path regresses.
#
# Compares the freshly generated BENCH_trace.json (make bench-json) against
# the committed baseline (git HEAD's BENCH_trace.json): any guarded
# benchmark (TraceCodec*, TraceCursor*, TraceMmap*, FilterPrivate) whose
# ns/op or allocs/op regressed more than 20% fails the run.
#
# Opt-out for known-noisy environments: BENCH_DELTA_SKIP=1 make bench-delta
#
# Usage: scripts/bench-delta.sh [BASELINE.json [CURRENT.json]]
#   BASELINE defaults to HEAD's committed BENCH_trace.json.
#   CURRENT defaults to the working-tree BENCH_trace.json.
set -eu
cd "$(dirname "$0")/.."

if [ "${BENCH_DELTA_SKIP:-0}" = 1 ]; then
    echo "bench-delta: skipped (BENCH_DELTA_SKIP=1)"
    exit 0
fi

current=${2:-BENCH_trace.json}
if [ ! -f "$current" ]; then
    echo "bench-delta: $current not found — run 'make bench-json' first" >&2
    exit 1
fi

if [ $# -ge 1 ]; then
    baseline=$1
else
    baseline=$(mktemp)
    trap 'rm -f "$baseline"' EXIT
    if ! git show HEAD:BENCH_trace.json >"$baseline" 2>/dev/null; then
        echo "bench-delta: no committed BENCH_trace.json baseline at HEAD; nothing to compare"
        exit 0
    fi
fi

exec go run ./cmd/whirltool benchdelta -max-regress "${BENCH_DELTA_MAX:-20}" "$baseline" "$current"
