#!/bin/sh
# fleet-smoke: end-to-end proof of the elastic fleet.
#
#  1. start a coordinator whirld with NO -workers flag and two worker
#     whirlds that join it themselves (-join): membership comes from
#     registration alone, visible in GET /v1/workers
#  2. submit a sweep; the joined workers compute every cell, and the
#     merged grid (timing/error columns stripped) is bit-identical to
#     a direct single-node whirlsweep run
#  3. start a THIRD worker while a bigger sweep is mid-flight: the
#     dispatcher rebalances and the late joiner computes cells of a
#     job that started before it existed
#  4. kill -9 one worker mid-sweep: its heartbeats stop, the lease
#     expires, the fleet marks it dead, and its cells re-route to the
#     survivors — the job completes with every cell accounted for
#  5. graceful shutdown: a SIGTERM'd worker deregisters (a departure,
#     not a lease expiry)
#
# Invoked by `make fleet-smoke` (part of `make ci`).
set -eu

GO=${GO:-go}
dir=.fleet-smoke
rm -rf "$dir" && mkdir -p "$dir"

fail() {
    echo "fleet-smoke: $*" >&2
    for log in coord worker1 worker2 worker3; do
        [ -f "$dir/$log.err" ] && sed "s/^/fleet-smoke: $log: /" "$dir/$log.err" >&2
    done
    exit 1
}

$GO build -o "$dir/whirld" ./cmd/whirld
$GO build -o "$dir/whirlsweep" ./cmd/whirlsweep

# start NAME ARGS... boots one whirld and records its pid + base URL.
start() {
    name=$1
    shift
    "$dir/whirld" -addr 127.0.0.1:0 "$@" > "$dir/$name.out" 2> "$dir/$name.err" &
    eval "${name}_pid=$!"
    i=0
    addr=
    while [ $i -lt 100 ]; do
        addr=$(sed -n 's/^whirld: listening on //p' "$dir/$name.out")
        [ -n "$addr" ] && break
        kill -0 "$(eval echo \$${name}_pid)" 2>/dev/null || fail "$name died during startup"
        sleep 0.1
        i=$((i + 1))
    done
    [ -n "$addr" ] || fail "$name never reported its listen address"
    eval "${name}_url=http://$addr"
}

cleanup() {
    for p in "${coord_pid:-}" "${worker1_pid:-}" "${worker2_pid:-}" "${worker3_pid:-}"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null
    done
    wait 2>/dev/null
}
trap cleanup EXIT

# alive polls GET /v1/workers until the alive count matches.
alive() { # alive N WHAT
    i=0
    while [ $i -lt 100 ]; do
        curl -fsS "$coord_url/v1/workers" | grep -q "\"alive\": $1," && return 0
        sleep 0.1
        i=$((i + 1))
    done
    fail "fleet never reached $1 alive workers ($2): $(curl -fsS "$coord_url/v1/workers")"
}

flat() { # flat BASEURL KEY -> value (0 when absent)
    curl -fsS "$1/metrics?format=flat" | sed -n "s/.*\"$2\": \([0-9]*\).*/\1/p" | grep . || echo 0
}

store="$dir/store"
# Short lease so the kill-phase expiry is quick; workers heartbeat at
# a third of it. -parallel 1 keeps per-round quotas small, so bigger
# grids take several dispatch rounds — the window the mid-sweep join
# and the kill both need.
start coord -store "$store" -parallel 2 -lease-ttl 2s
curl -fsS "$coord_url/healthz" > /dev/null || fail "coordinator healthz unreachable"
curl -fsS "$coord_url/v1/workers" | grep -q '"alive": 0,' || fail "fresh coordinator fleet not empty"

start worker1 -store "$store" -parallel 1 -join "$coord_url"
start worker2 -store "$store" -parallel 1 -join "$coord_url"
alive 2 "registration-only join"

submit() {
    curl -fsS -X POST -H 'Content-Type: application/json' -d "$1" "$2/v1/sweeps" \
        | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p'
}
await() { # await JOBID
    (curl -fsS -N --max-time 300 "$coord_url/v1/jobs/$1/stream" || true) | grep -q '^event: done' \
        || fail "job $1 never finished"
}

# --- phase 2: registration-joined workers compute the grid, bit-identical ---
req='{"apps":["delaunay","MIS"],"schemes":["jigsaw","snuca-lru"],"scale":0.05}'
id=$(submit "$req" "$coord_url")
[ -n "$id" ] || fail "coordinator submit returned no job id"
await "$id"
status=$(curl -fsS "$coord_url/v1/jobs/$id")
printf '%s\n' "$status" | grep -q '"state": "done"' || fail "elastic sweep failed: $status"
printf '%s\n' "$status" | grep -q '"computed": 4' || fail "elastic sweep did not compute 4 cells: $status"
printf '%s\n' "$status" | grep -q '"workers"' || fail "job status has no per-worker split: $status"

# Both joined workers actually computed cells (the grid went through
# the fleet, not local simulation).
w1c=$(flat "$worker1_url" whirld.rows.computed)
w2c=$(flat "$worker2_url" whirld.rows.computed)
[ "$((w1c + w2c))" -eq 4 ] || fail "workers computed $w1c + $w2c cells, want 4"

# Bit-identity against a single-node run (wall-clock and error columns
# stripped: fields 17-18; field 19 is the deterministic cell key).
curl -fsS "$coord_url/v1/jobs/$id/rows?format=csv" | cut -d, -f1-16,19 > "$dir/fleet.csv"
"$dir/whirlsweep" -apps delaunay,MIS -schemes jigsaw,snuca-lru -scale 0.05 -format csv -q \
    | cut -d, -f1-16,19 > "$dir/direct.csv"
diff "$dir/fleet.csv" "$dir/direct.csv" || fail "fleet rows differ from the single-node run"

# --- phase 3: a worker joining mid-sweep receives cells ---
req2='{"apps":["mcf","lbm","hull","cactus"],"schemes":["jigsaw","snuca-lru"],"scale":0.1}'
id2=$(submit "$req2" "$coord_url")
# Wait for the first row (the sweep is mid-flight), then bring up the
# late joiner. sed quits at the first row, so curl dies on SIGPIPE:
# expected, muted.
(curl -fsS -N --max-time 300 "$coord_url/v1/jobs/$id2/stream" 2>/dev/null || true) \
    | sed '/^event: row/q' > /dev/null
start worker3 -store "$store" -parallel 4 -join "$coord_url"
await "$id2"
status=$(curl -fsS "$coord_url/v1/jobs/$id2")
printf '%s\n' "$status" | grep -q '"state": "done"' || fail "mid-join sweep failed: $status"
printf '%s\n' "$status" | grep -q '"done": 8' || fail "mid-join sweep lost cells: $status"
w3c=$(flat "$worker3_url" whirld.rows.computed)
[ "$w3c" -gt 0 ] || fail "mid-sweep joiner computed no cells (rebalance never reached it)"
rebalances=$(flat "$coord_url" whirld.fleet.rebalances)
[ "$rebalances" -gt 0 ] || fail "no rebalance recorded for the mid-sweep join"

# --- phase 4: kill -9 a worker; the lease expires and its cells re-route ---
alive 3 "third worker joined"
req3='{"apps":["mcf","lbm","hull","cactus"],"schemes":["jigsaw","snuca-lru"],"scale":0.1,"seed":7}'
id3=$(submit "$req3" "$coord_url")
(curl -fsS -N --max-time 300 "$coord_url/v1/jobs/$id3/stream" 2>/dev/null || true) \
    | sed '/^event: row/q' > /dev/null
kill -9 "$worker1_pid" 2>/dev/null || true
await "$id3"
status=$(curl -fsS "$coord_url/v1/jobs/$id3")
printf '%s\n' "$status" | grep -q '"state": "done"' || fail "job did not survive the worker kill: $status"
printf '%s\n' "$status" | grep -q '"done": 8' || fail "cells went missing after the worker kill: $status"
rows=$(curl -fsS "$coord_url/v1/jobs/$id3/rows?format=csv" | tail -n +2 | wc -l)
[ "$rows" -eq 8 ] || fail "row grid incomplete after worker kill: $rows of 8"
curl -fsS "$coord_url/v1/jobs/$id3/rows?format=csv" | awk -F, 'NR>1 && $18!=""{bad++} END{exit bad>0}' \
    || fail "error rows present after re-dispatch"
# The killed worker's silence must surface as a lease expiry (worker
# death by missed heartbeats, not just a dropped connection).
alive 2 "killed worker's lease expired"
expired=$(flat "$coord_url" whirld.fleet.leases_expired)
[ "$expired" -gt 0 ] || fail "lease expiry not recorded after kill -9"
curl -fsS "$coord_url/v1/workers" | grep -q '"reason": "lease expired"' \
    || fail "roster does not show the lease expiry: $(curl -fsS "$coord_url/v1/workers")"

# --- phase 5: graceful shutdown deregisters (departure, not expiry) ---
kill -TERM "$worker3_pid"
wait "$worker3_pid" || fail "worker3 exited non-zero on SIGTERM"
worker3_pid=
alive 1 "worker3 deregistered on SIGTERM"
departures=$(flat "$coord_url" whirld.fleet.departures)
[ "$departures" -gt 0 ] || fail "graceful shutdown did not deregister"

kill -TERM "$coord_pid"
wait "$coord_pid" || fail "coordinator exited non-zero on SIGTERM"
kill -TERM "$worker2_pid"
wait "$worker2_pid" || fail "worker2 exited non-zero on SIGTERM"
coord_pid= worker1_pid= worker2_pid=
trap - EXIT

rm -rf "$dir"
echo "fleet-smoke OK"
