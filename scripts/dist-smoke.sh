#!/bin/sh
# dist-smoke: end-to-end proof of distributed sweep execution.
#
#  1. start two worker whirlds and one coordinator whirld
#     (-workers http://w1,http://w2), all sharing ONE result store
#     directory — the "shard the grid, share the store" topology
#  2. submit a sweep to the coordinator and await its SSE stream; the
#     job status must show a per-worker served/computed split covering
#     the whole grid
#  3. diff the merged grid (timing/error columns stripped) against a
#     direct single-node whirlsweep run — distribution must be
#     bit-identical
#  4. resubmit: every cell is served from the warm shared store with
#     zero re-simulations on every node (worker counters prove it)
#  5. any node serves any cell computed anywhere: a sweep submitted
#     directly to a worker is fully served from the shared store
#  6. kill -9 one worker mid-sweep on a fresh store: the coordinator
#     re-dispatches its shard and the job still completes with every
#     cell accounted for
#
# Invoked by `make dist-smoke` (part of `make ci`).
set -eu

GO=${GO:-go}
dir=.dist-smoke
rm -rf "$dir" && mkdir -p "$dir"

fail() {
    echo "dist-smoke: $*" >&2
    for log in coord worker1 worker2; do
        [ -f "$dir/$log.err" ] && sed "s/^/dist-smoke: $log: /" "$dir/$log.err" >&2
    done
    exit 1
}

$GO build -o "$dir/whirld" ./cmd/whirld
$GO build -o "$dir/whirlsweep" ./cmd/whirlsweep

# start NAME ARGS... boots one whirld and records its pid + base URL.
start() {
    name=$1
    shift
    "$dir/whirld" -addr 127.0.0.1:0 "$@" > "$dir/$name.out" 2> "$dir/$name.err" &
    eval "${name}_pid=$!"
    i=0
    addr=
    while [ $i -lt 100 ]; do
        addr=$(sed -n 's/^whirld: listening on //p' "$dir/$name.out")
        [ -n "$addr" ] && break
        kill -0 "$(eval echo \$${name}_pid)" 2>/dev/null || fail "$name died during startup"
        sleep 0.1
        i=$((i + 1))
    done
    [ -n "$addr" ] || fail "$name never reported its listen address"
    eval "${name}_url=http://$addr"
}

cleanup() {
    for p in "${coord_pid:-}" "${worker1_pid:-}" "${worker2_pid:-}"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null
    done
    wait 2>/dev/null
}
trap cleanup EXIT

store="$dir/store"
start worker1 -store "$store" -parallel 2
start worker2 -store "$store" -parallel 2
start coord -store "$store" -parallel 2 -workers "$worker1_url,$worker2_url"

curl -fsS "$coord_url/healthz" > /dev/null || fail "coordinator healthz unreachable"

req='{"apps":["delaunay","MIS"],"schemes":["jigsaw","snuca-lru"],"scale":0.05}'
submit() {
    curl -fsS -X POST -H 'Content-Type: application/json' -d "$1" "$2/v1/sweeps" \
        | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p'
}
await() { # await JOBID BASEURL
    (curl -fsS -N --max-time 300 "$2/v1/jobs/$1/stream" || true) | grep -q '^event: done' \
        || fail "job $1 never finished"
}

# --- distributed cold run ---
id=$(submit "$req" "$coord_url")
[ -n "$id" ] || fail "coordinator submit returned no job id"
await "$id" "$coord_url"
status=$(curl -fsS "$coord_url/v1/jobs/$id")
printf '%s\n' "$status" | grep -q '"computed": 4' || fail "cold distributed run did not compute 4 cells: $status"
printf '%s\n' "$status" | grep -q '"workers"' || fail "job status has no per-worker split: $status"

# The merged grid is bit-identical to a single-node run (wall-clock and
# error columns stripped: fields 17-18; field 19 is the cell key, which
# is deterministic and must also match).
curl -fsS "$coord_url/v1/jobs/$id/rows?format=csv" | cut -d, -f1-16,19 > "$dir/dist.csv"
"$dir/whirlsweep" -apps delaunay,MIS -schemes jigsaw,snuca-lru -scale 0.05 -format csv -q \
    | cut -d, -f1-16,19 > "$dir/direct.csv"
diff "$dir/dist.csv" "$dir/direct.csv" || fail "distributed rows differ from the single-node run"

# --- warm resubmit: zero re-simulations on every node ---
w1_computed=$(curl -fsS "$worker1_url/metrics?format=flat" | sed -n 's/.*"whirld.rows.computed": \([0-9]*\).*/\1/p')
w2_computed=$(curl -fsS "$worker2_url/metrics?format=flat" | sed -n 's/.*"whirld.rows.computed": \([0-9]*\).*/\1/p')
id2=$(submit "$req" "$coord_url")
await "$id2" "$coord_url"
status=$(curl -fsS "$coord_url/v1/jobs/$id2")
printf '%s\n' "$status" | grep -q '"served": 4' || fail "warm resubmit did not serve 4 rows: $status"
printf '%s\n' "$status" | grep -q '"computed": 0' || fail "warm resubmit re-simulated on the coordinator: $status"
w1_after=$(curl -fsS "$worker1_url/metrics?format=flat" | sed -n 's/.*"whirld.rows.computed": \([0-9]*\).*/\1/p')
w2_after=$(curl -fsS "$worker2_url/metrics?format=flat" | sed -n 's/.*"whirld.rows.computed": \([0-9]*\).*/\1/p')
[ "$w1_computed" = "$w1_after" ] || fail "warm resubmit re-simulated on worker1 ($w1_computed -> $w1_after)"
[ "$w2_computed" = "$w2_after" ] || fail "warm resubmit re-simulated on worker2 ($w2_computed -> $w2_after)"

# --- any node serves any cell: submit the same grid straight to a worker ---
id3=$(submit "$req" "$worker1_url")
await "$id3" "$worker1_url"
status=$(curl -fsS "$worker1_url/v1/jobs/$id3")
printf '%s\n' "$status" | grep -q '"served": 4' || fail "worker1 did not serve from the shared store: $status"

# --- dead worker mid-sweep: the job must still complete, all cells accounted ---
req2='{"apps":["mcf","lbm","hull","cactus"],"schemes":["jigsaw","snuca-lru"],"scale":0.05}'
id4=$(submit "$req2" "$coord_url")
# Kill worker2 the moment the first row lands (the sweep is mid-flight).
# sed quits at the first row, so curl dies on SIGPIPE: expected, muted.
(curl -fsS -N --max-time 300 "$coord_url/v1/jobs/$id4/stream" 2>/dev/null || true) \
    | sed '/^event: row/q' > /dev/null
kill -9 "$worker2_pid" 2>/dev/null || true
await "$id4" "$coord_url"
status=$(curl -fsS "$coord_url/v1/jobs/$id4")
printf '%s\n' "$status" | grep -q '"state": "done"' || fail "job did not survive the worker kill: $status"
printf '%s\n' "$status" | grep -q '"done": 8' || fail "cells went missing after the worker kill: $status"
rows=$(curl -fsS "$coord_url/v1/jobs/$id4/rows?format=csv" | tail -n +2 | wc -l)
[ "$rows" -eq 8 ] || fail "row grid incomplete after worker kill: $rows of 8"
curl -fsS "$coord_url/v1/jobs/$id4/rows?format=csv" | awk -F, 'NR>1 && $18!=""{bad++} END{exit bad>0}' \
    || fail "error rows present after re-dispatch"

# --- graceful shutdown of the survivors ---
kill -TERM "$coord_pid"
wait "$coord_pid" || fail "coordinator exited non-zero on SIGTERM"
kill -TERM "$worker1_pid"
wait "$worker1_pid" || fail "worker1 exited non-zero on SIGTERM"
coord_pid= worker1_pid= worker2_pid=
trap - EXIT

rm -rf "$dir"
echo "dist-smoke OK"
