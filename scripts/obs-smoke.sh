#!/bin/sh
# obs-smoke: end-to-end proof of the observability surface.
#
#  1. start a coordinator (with -debug-addr pprof) and two join workers
#  2. submit a sweep that shards across both workers and await it
#  3. fetch GET /v1/jobs/{id}/trace: the distributed sweep must collect
#     as ONE trace tree — a single root, the coordinator's job and
#     dispatch.shard spans, and BOTH workers' cell spans stitched in
#     under the same trace ID, linked by parent span IDs
#  4. render it with `whirltool spans` (the waterfall must mention both
#     workers and the sweep stages)
#  5. lint /metrics?format=prom as valid Prometheus text exposition
#  6. poke the pprof listener and the enriched /healthz
#
# Invoked by `make obs-smoke` (part of `make ci`).
set -eu

GO=${GO:-go}
dir=.obs-smoke
rm -rf "$dir" && mkdir -p "$dir"

fail() {
    echo "obs-smoke: $*" >&2
    for log in coord worker1 worker2; do
        [ -f "$dir/$log.err" ] && sed "s/^/obs-smoke: $log: /" "$dir/$log.err" >&2
    done
    exit 1
}

$GO build -o "$dir/whirld" ./cmd/whirld
$GO build -o "$dir/whirltool" ./cmd/whirltool

start() {
    name=$1
    shift
    "$dir/whirld" -addr 127.0.0.1:0 "$@" > "$dir/$name.out" 2> "$dir/$name.err" &
    eval "${name}_pid=$!"
    i=0
    addr=
    while [ $i -lt 100 ]; do
        addr=$(sed -n 's/^whirld: listening on //p' "$dir/$name.out")
        [ -n "$addr" ] && break
        kill -0 "$(eval echo \$${name}_pid)" 2>/dev/null || fail "$name died during startup"
        sleep 0.1
        i=$((i + 1))
    done
    [ -n "$addr" ] || fail "$name never reported its listen address"
    eval "${name}_url=http://$addr"
}

cleanup() {
    for p in "${coord_pid:-}" "${worker1_pid:-}" "${worker2_pid:-}"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null
    done
    wait 2>/dev/null
}
trap cleanup EXIT

alive() { # alive N WHAT
    i=0
    while [ $i -lt 100 ]; do
        curl -fsS "$coord_url/v1/workers" | grep -q "\"alive\": $1," && return 0
        sleep 0.1
        i=$((i + 1))
    done
    fail "fleet never reached $1 alive workers ($2)"
}

store="$dir/store"
start coord -store "$store" -parallel 2 -debug-addr 127.0.0.1:0
start worker1 -store "$store" -parallel 1 -join "$coord_url"
start worker2 -store "$store" -parallel 1 -join "$coord_url"
alive 2 "workers joined"

debug_addr=$(sed -n 's/^whirld: debug listening on //p' "$dir/coord.out")
[ -n "$debug_addr" ] || fail "coordinator never reported its debug address"

# --- a sweep across both workers, traced end to end ---
req='{"apps":["delaunay","MIS"],"schemes":["jigsaw","snuca-lru"],"scale":0.05}'
id=$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$req" "$coord_url/v1/sweeps" \
    | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$id" ] || fail "submit returned no job id"
(curl -fsS -N --max-time 300 "$coord_url/v1/jobs/$id/stream" || true) | grep -q '^event: done' \
    || fail "job $id never finished"
status=$(curl -fsS "$coord_url/v1/jobs/$id")
printf '%s\n' "$status" | grep -q '"state": "done"' || fail "sweep failed: $status"
printf '%s\n' "$status" | grep -q '"trace_id"' || fail "job status carries no trace_id: $status"

curl -fsS "$coord_url/v1/jobs/$id/trace" > "$dir/trace.jsonl" || fail "trace endpoint failed"
[ -s "$dir/trace.jsonl" ] || fail "trace endpoint returned nothing"

# One tree: exactly one rootless span, every span in one trace.
roots=$(grep -c -v '"parent"' "$dir/trace.jsonl" || true)
[ "$roots" -eq 1 ] || fail "trace has $roots roots, want exactly 1"
traces=$(sed -n 's/.*"trace":"\([0-9a-f]*\)".*/\1/p' "$dir/trace.jsonl" | sort -u | wc -l)
[ "$traces" -eq 1 ] || fail "spans scattered across $traces trace IDs, want 1"

# The coordinator's side of the tree…
grep -q '"name":"job"' "$dir/trace.jsonl" || fail "no job span in trace"
shard_workers=$(grep '"name":"dispatch.shard"' "$dir/trace.jsonl" \
    | sed -n 's/.*"worker":"\([^"]*\)".*/\1/p' | sort -u | wc -l)
[ "$shard_workers" -eq 2 ] || fail "dispatch.shard spans cover $shard_workers workers, want 2"
# …and both workers' stitched-in cell spans (4 cells across 2 workers).
cells=$(grep -c '"name":"sweep.cell"' "$dir/trace.jsonl" || true)
[ "$cells" -eq 4 ] || fail "trace holds $cells sweep.cell spans, want 4"
grep -q '"name":"sim.run"' "$dir/trace.jsonl" || fail "no sim.run spans stitched from workers"

# The waterfall renders and names the stages.
"$dir/whirltool" spans "$dir/trace.jsonl" > "$dir/waterfall.txt" || fail "whirltool spans failed"
for want in job dispatch.shard sweep.cell "critical path"; do
    grep -q "$want" "$dir/waterfall.txt" || fail "waterfall missing $want"
done

# --- Prometheus exposition lints clean ---
curl -fsS "$coord_url/metrics?format=prom" > "$dir/metrics.prom" || fail "prom metrics failed"
"$dir/whirltool" promlint "$dir/metrics.prom" || fail "prom exposition failed lint"
grep -q '^whirld_spans_total' "$dir/metrics.prom" || fail "no span counter in prom metrics"

# --- pprof on its own listener; enriched healthz ---
curl -fsS "http://$debug_addr/debug/pprof/" > /dev/null || fail "pprof index unreachable"
curl -fsS "http://$debug_addr/debug/pprof/cmdline" > /dev/null || fail "pprof cmdline unreachable"
curl -fsS "$coord_url/debug/pprof/" > /dev/null 2>&1 && fail "pprof leaked onto the serving listener"
curl -fsS "$coord_url/healthz" | grep -q '"goroutines"' || fail "healthz has no goroutines gauge"

kill -TERM "$worker1_pid" "$worker2_pid" "$coord_pid"
wait "$worker1_pid" || fail "worker1 exited non-zero"
wait "$worker2_pid" || fail "worker2 exited non-zero"
wait "$coord_pid" || fail "coordinator exited non-zero"
coord_pid= worker1_pid= worker2_pid=
trap - EXIT

rm -rf "$dir"
echo "obs-smoke OK"
