#!/bin/sh
# serve-smoke: end-to-end proof of the whirld serving pipeline.
#
#  1. start whirld on an ephemeral port with a fresh result store
#  2. submit a sweep over HTTP and await its SSE stream (4 row events
#     + the final done event)
#  3. diff the job's CSV rows (timing/error columns stripped) against a
#     direct whirlsweep run — the daemon must be bit-identical to the CLI
#  4. resubmit the same sweep: every cell must be served from the warm
#     store with zero re-simulations (the job counters prove it)
#  5. read the same store from whirlsweep -store: the CLI and the
#     daemon share one result universe
#  6. SIGTERM must shut the daemon down gracefully (exit 0)
#
# Invoked by `make serve-smoke` (part of `make ci`).
set -eu

GO=${GO:-go}
dir=.serve-smoke
rm -rf "$dir" && mkdir -p "$dir"

fail() {
    echo "serve-smoke: $*" >&2
    [ -f "$dir/whirld.err" ] && sed 's/^/serve-smoke: whirld: /' "$dir/whirld.err" >&2
    exit 1
}

$GO build -o "$dir/whirld" ./cmd/whirld
$GO build -o "$dir/whirlsweep" ./cmd/whirlsweep

"$dir/whirld" -addr 127.0.0.1:0 -store "$dir/store" -workers 2 \
    > "$dir/whirld.out" 2> "$dir/whirld.err" &
pid=$!
trap 'kill "$pid" 2>/dev/null; wait "$pid" 2>/dev/null' EXIT

addr=
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's/^whirld: listening on //p' "$dir/whirld.out")
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || fail "whirld died during startup"
    sleep 0.1
    i=$((i + 1))
done
[ -n "$addr" ] || fail "whirld never reported its listen address"
base="http://$addr"

curl -fsS "$base/healthz" > /dev/null || fail "healthz unreachable"

req='{"apps":["delaunay","MIS"],"schemes":["jigsaw","snuca-lru"],"scale":0.05}'
submit() {
    curl -fsS -X POST -H 'Content-Type: application/json' -d "$req" "$base/v1/sweeps" \
        | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p'
}

# Cold run: submit, then follow the SSE stream to completion.
id=$(submit)
[ -n "$id" ] || fail "submit returned no job id"
stream=$( (curl -fsS -N --max-time 300 "$base/v1/jobs/$id/stream" || true) | sed '/^event: done/q')
rows=$(printf '%s\n' "$stream" | grep -c '^event: row') || true
[ "$rows" -eq 4 ] || fail "SSE stream delivered $rows row events, want 4"
printf '%s\n' "$stream" | grep -q '^event: done' || fail "SSE stream never sent done"

# The HTTP-computed grid must be bit-identical to the direct CLI run
# (wall-clock and error columns stripped: fields 17-18).
curl -fsS "$base/v1/jobs/$id/rows?format=csv" | cut -d, -f1-16 > "$dir/http.csv"
"$dir/whirlsweep" -apps delaunay,MIS -schemes jigsaw,snuca-lru -scale 0.05 -format csv -q \
    | cut -d, -f1-16 > "$dir/direct.csv"
diff "$dir/http.csv" "$dir/direct.csv" || fail "HTTP rows differ from the direct whirlsweep run"

# Warm resubmit: all 4 cells served from the store, zero re-simulations.
id2=$(submit)
(curl -fsS -N --max-time 300 "$base/v1/jobs/$id2/stream" || true) | grep -q '^event: done' \
    || fail "resubmitted job never finished"
status=$(curl -fsS "$base/v1/jobs/$id2")
printf '%s\n' "$status" | grep -q '"served": 4' || fail "warm resubmit did not serve 4 rows: $status"
printf '%s\n' "$status" | grep -q '"computed": 0' || fail "warm resubmit re-simulated cells: $status"

# The CLI reads the same universe: whirlsweep -store serves everything.
"$dir/whirlsweep" -apps delaunay,MIS -schemes jigsaw,snuca-lru -scale 0.05 -format csv \
    -store "$dir/store" -o /dev/null 2> "$dir/sweep.err" \
    || fail "whirlsweep -store run failed"
grep -q 'results: 4 served from' "$dir/sweep.err" \
    || fail "whirlsweep -store did not serve from the daemon's store: $(cat "$dir/sweep.err")"

# Graceful shutdown: SIGTERM, clean exit.
kill -TERM "$pid"
wait "$pid" || fail "whirld exited non-zero on SIGTERM"
trap - EXIT

rm -rf "$dir"
echo "serve-smoke OK"
