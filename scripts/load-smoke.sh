#!/bin/sh
# load-smoke: end-to-end proof of the whirlload serving-SLO pipeline.
#
#  1. start whirld on an ephemeral port with a tight /v1/results
#     concurrency limit (-inflight results=2) and a fresh store
#  2. warm the store with one small sweep so /v1/results and warm
#     /v1/sweeps resubmits have rows to serve
#  3. whirltool load drives a mixed traffic spec (results reads, jobs
#     polls, warm sweep resubmits) and must pass its throughput floors
#     and p99 SLOs — a breach exits 1 and fails CI
#  4. a second spec overdrives /v1/results far past its limit: the
#     daemon must shed (429 + Retry-After, server.shed counts it) while
#     /healthz and /v1/jobs keep serving
#  5. /metrics must show the per-endpoint latency histograms, and
#     ?format=flat must still carry the legacy whirld.* keys
#  6. every non-2xx /v1 body must be the JSON error envelope
#
# Invoked by `make load-smoke` (part of `make ci`).
set -eu

GO=${GO:-go}
dir=.load-smoke
rm -rf "$dir" && mkdir -p "$dir"

fail() {
    echo "load-smoke: $*" >&2
    [ -f "$dir/whirld.err" ] && sed 's/^/load-smoke: whirld: /' "$dir/whirld.err" >&2
    exit 1
}

$GO build -o "$dir/whirld" ./cmd/whirld
$GO build -o "$dir/whirltool" ./cmd/whirltool

"$dir/whirld" -addr 127.0.0.1:0 -store "$dir/store" -parallel 2 -inflight results=2,stream=1 \
    > "$dir/whirld.out" 2> "$dir/whirld.err" &
pid=$!
trap 'kill "$pid" 2>/dev/null; wait "$pid" 2>/dev/null' EXIT

addr=
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's/^whirld: listening on //p' "$dir/whirld.out")
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || fail "whirld died during startup"
    sleep 0.1
    i=$((i + 1))
done
[ -n "$addr" ] || fail "whirld never reported its listen address"
base="http://$addr"

# --- warm the store: one small sweep, awaited over SSE ---
req='{"apps":["delaunay"],"schemes":["jigsaw"],"scale":0.05}'
id=$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$req" "$base/v1/sweeps" \
    | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$id" ] || fail "warmup submit returned no job id"
(curl -fsS -N --max-time 300 "$base/v1/jobs/$id/stream" || true) | grep -q '^event: done' \
    || fail "warmup sweep never finished"

# --- mixed traffic against the warm daemon: floors + SLOs must hold ---
# The floors are deliberately conservative (shared CI runners): the
# point is that the gate exists and a grossly regressed server fails it.
cat > "$dir/traffic.json" <<'EOF'
{
  "name": "load-smoke",
  "duration_s": 3,
  "seed": 42,
  "clients": [
    {"id": "readers", "op": "results", "rate": 120, "concurrency": 4,
     "arrival": "poisson", "params": {"app": "delaunay"},
     "slo": {"p99_ms": 500}, "min_rps": 40},
    {"id": "pollers", "op": "jobs", "rate": 40, "concurrency": 2,
     "arrival": "bursty", "burst": {"size": 5},
     "slo": {"p99_ms": 500}, "min_rps": 15},
    {"id": "resubmits", "op": "sweep", "rate": 2, "concurrency": 2,
     "arrival": "constant", "wait": true,
     "sweep": {"apps": ["delaunay"], "schemes": ["jigsaw"], "scale": 0.05},
     "slo": {"p99_ms": 2000}, "min_rps": 1}
  ]
}
EOF
"$dir/whirltool" load -spec "$dir/traffic.json" -base "$base" \
    || fail "mixed traffic breached its SLOs / floors"

# --- overdrive /v1/results past its 2-slot limit: it must shed while
# --- other endpoints keep serving ---
# The hammer is bursty on purpose: 50 back-to-back requests from 32
# workers spike the endpoint's in-flight count far past its 2-slot
# limit, so shedding is guaranteed — a perfectly paced constant stream
# at the same rate would never overlap on sub-millisecond responses.
cat > "$dir/overdrive.json" <<'EOF'
{
  "name": "overdrive",
  "duration_s": 2,
  "seed": 7,
  "clients": [
    {"id": "hammer", "op": "results", "rate": 1500, "concurrency": 32,
     "arrival": "bursty", "burst": {"size": 50}},
    {"id": "bystander", "op": "jobs", "rate": 30, "concurrency": 2,
     "arrival": "constant", "slo": {"p99_ms": 500}, "min_rps": 10}
  ]
}
EOF
"$dir/whirltool" load -spec "$dir/overdrive.json" -base "$base" -format json -check=false \
    > "$dir/overdrive.out" || fail "overdrive run failed outright"

# The hammer class must have been shed (not errored), and the bystander
# class must have kept its SLO through the storm.
shed=$(sed -n '/"id": "hammer"/,/}/s/.*"shed": \([0-9]*\).*/\1/p' "$dir/overdrive.out" | head -1)
[ -n "$shed" ] && [ "$shed" -gt 0 ] || fail "overdrive shed nothing: $(cat "$dir/overdrive.out")"
if grep -q '"violations"' "$dir/overdrive.out"; then
    fail "bystander class breached during overdrive: $(cat "$dir/overdrive.out")"
fi
curl -fsS "$base/healthz" > /dev/null || fail "healthz unreachable after overdrive"

# --- the shed contract on the wire: park the single stream slot with a
# --- long-running job's SSE feed, then probe — the probe must get
# --- HTTP 429 with Retry-After and the envelope code, deterministically ---
slowreq='{"apps":["delaunay","MIS","mcf"],"schemes":["whirlpool","jigsaw"],"scale":0.3,"seed":99}'
sid=$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$slowreq" "$base/v1/sweeps" \
    | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$sid" ] || fail "slow submit returned no job id"
curl -sN --max-time 60 "$base/v1/jobs/$sid/stream" > /dev/null 2>&1 &
parked=$!
sleep 0.5
curl -is "$base/v1/jobs/$sid/stream" > "$dir/probe.out" 2>/dev/null || true
grep -q '^HTTP/1.1 429' "$dir/probe.out" || fail "second stream request was not shed: $(cat "$dir/probe.out")"
grep -qi '^Retry-After:' "$dir/probe.out" || fail "shed 429 lacks Retry-After: $(cat "$dir/probe.out")"
grep -q '"code": *"overloaded"' "$dir/probe.out" || fail "shed 429 body is not the envelope: $(cat "$dir/probe.out")"
curl -fsS -X DELETE "$base/v1/jobs/$sid" > /dev/null || fail "cancel of the slow job failed"
kill "$parked" 2>/dev/null || true
wait "$parked" 2>/dev/null || true

# --- /metrics: histograms in the tree, legacy keys in ?format=flat ---
metrics=$(curl -fsS "$base/metrics")
printf '%s' "$metrics" | grep -q '"endpoints"' || fail "/metrics lacks server.endpoints"
printf '%s' "$metrics" | grep -q '"p99_ms"' || fail "/metrics lacks latency histograms"
flat=$(curl -fsS "$base/metrics?format=flat")
shedcount=$(printf '%s\n' "$flat" | sed -n 's/.*"server.shed": \([0-9]*\).*/\1/p' | head -1)
[ -n "$shedcount" ] && [ "$shedcount" -gt 0 ] || fail "server.shed is zero after overdrive"
printf '%s' "$flat" | grep -q '"whirld.jobs.submitted"' || fail "?format=flat lost legacy whirld.* keys"
printf '%s' "$flat" | grep -q '"server.endpoints.results.latency.p99_ms"' \
    || fail "?format=flat lacks flattened endpoint latencies"

# --- error envelope on every non-2xx /v1 response ---
curl -s "$base/v1/jobs/nope" | grep -q '"code": *"not_found"' \
    || fail "404 body is not the envelope"
curl -s "$base/v1/results?limit=bogus" | grep -q '"code": *"bad_request"' \
    || fail "400 body is not the envelope"

# Graceful shutdown.
kill -TERM "$pid"
wait "$pid" || fail "whirld exited non-zero on SIGTERM"
trap - EXIT

rm -rf "$dir"
echo "load-smoke OK"
