package whirlpool

import (
	"fmt"
	"sort"

	"whirlpool/internal/experiments"
	"whirlpool/internal/workloads"
)

// FigureOptions control figure regeneration.
type FigureOptions struct {
	// Scale multiplies workload length (default 1.0; smaller is faster).
	Scale float64
	// Apps restricts suite-wide figures to a subset (nil = full suite).
	Apps []string
	// Mixes is the mix count for Fig 22 (default 20, as in the paper).
	Mixes int
	// Seed overrides the workload-generation seed (0 = the published
	// default).
	Seed uint64
}

// Figures lists the regenerable table/figure ids.
func Figures() []string {
	return []string{
		"fig2", "fig5", "fig6", "fig8", "fig9", "fig10", "fig11", "fig13",
		"fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22",
		"fig23", "table2", "table3",
		"ablation-latency", "ablation-trading", "ablation-bypass",
	}
}

// Figure regenerates one of the paper's tables or figures and returns it
// rendered as text. See Figures() for valid ids.
func Figure(id string, opt *FigureOptions) (string, error) {
	o := FigureOptions{}
	if opt != nil {
		o = *opt
	}
	if o.Scale == 0 {
		o.Scale = 1.0
	}
	if o.Mixes == 0 {
		o.Mixes = 20
	}
	// Default to the built-in suite only: loaded spec files must not
	// silently change which apps a paper figure averages over.
	apps := o.Apps
	if apps == nil {
		apps = workloads.BuiltinNames()
	}
	h := harnessFor(harnessKey{scale: o.Scale, seed: o.Seed})
	switch id {
	case "fig2":
		return h.Fig02().String(), nil
	case "fig5", "fig3", "fig4":
		return h.Fig05(), nil
	case "fig6":
		return h.Fig06().String(), nil
	case "fig8":
		return h.Fig08().String(), nil
	case "fig9":
		return h.Fig09().String(), nil
	case "fig10":
		return h.Fig10().String(), nil
	case "fig11":
		return h.Fig11().String(), nil
	case "fig13":
		par := ParallelApps()
		return h.Fig13(par).String(), nil
	case "fig16":
		return h.Fig16(apps).String(), nil
	case "fig17":
		return h.Fig17(), nil
	case "fig18":
		return h.Fig18().String(), nil
	case "fig19":
		return h.Fig19().String(), nil
	case "fig20":
		return h.Fig20().String(), nil
	case "fig21":
		t, _ := h.Fig21(apps)
		return t.String(), nil
	case "fig22":
		mixes4 := experiments.RandomMixes(o.Mixes, 4, 0xA11CE)
		t4, _ := h.Fig22(mixes4, false)
		mixes16 := experiments.RandomMixes(o.Mixes, 16, 0xB0B)
		t16, _ := h.Fig22(mixes16, true)
		return t4.String() + "\n" + t16.String(), nil
	case "fig23":
		return experiments.Fig23().String(), nil
	case "table2":
		return h.Table2().String(), nil
	case "table3":
		return experiments.Table3().String(), nil
	case "ablation-latency":
		return h.AblationLatencyCurves("delaunay").String(), nil
	case "ablation-trading":
		return h.AblationTrading("delaunay").String(), nil
	case "ablation-bypass":
		return h.AblationBypass(apps).String(), nil
	}
	valid := Figures()
	sort.Strings(valid)
	return "", fmt.Errorf("whirlpool: unknown figure %q (valid: %v)", id, valid)
}
