// Bypass case study: mis (maximal independent set) has a cache-friendly
// vertices pool and a streaming edges pool. Whirlpool's static
// classification lets the runtime bypass edges entirely while giving the
// cache to vertices (Sec 3.3, Figs 9-10). This example shows the bypass
// happening and its energy effect, and uses WhirlTool to discover the
// same pools automatically.
package main

import (
	"fmt"

	"whirlpool"
)

func main() {
	opt := &whirlpool.Options{Scale: 0.5}

	jig, err := whirlpool.Run("MIS", whirlpool.Jigsaw, opt)
	check(err)
	whl, err := whirlpool.Run("MIS", whirlpool.Whirlpool, opt)
	check(err)

	fmt.Println("mis under Jigsaw vs Whirlpool:")
	for _, r := range []whirlpool.Report{jig, whl} {
		fmt.Printf("%-10s cycles=%.1fM  LLC accesses=%d  bypassed=%d (%.0f%%)  energy=%.2fmJ\n",
			r.Scheme, r.Cycles/1e6, r.LLCAccesses, r.Bypasses,
			100*float64(r.Bypasses)/float64(r.LLCAccesses), r.EnergyPJ/1e9)
	}
	fmt.Printf("\nWhirlpool vs Jigsaw: %+.1f%% performance, %+.1f%% energy\n",
		100*(jig.Cycles/whl.Cycles-1), 100*(whl.EnergyPJ/jig.EnergyPJ-1))
	fmt.Println("paper (Sec 3.3): +38% performance, -53% data movement energy")

	// The same classification, discovered automatically.
	pools, err := whirlpool.AutoClassify("MIS", 2, opt)
	check(err)
	fmt.Println("\nWhirlTool's automatic 2-pool classification:")
	for i, g := range pools {
		fmt.Printf("  pool %d: %v\n", i+1, g)
	}
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
