// PaWS example: pagerank on the 16-core chip (Sec 3.4, Fig 13).
//
// Conventional work-stealing scatters every partition's data across all
// cores, so neither private caches nor NUCA placement can help. PaWS
// partitions the input graph (our METIS-substitute partitioner), runs
// tasks on the core owning their data, steals from neighbors first —
// and Whirlpool maps each partition to a pool so its VC lands next to
// its cores.
package main

import (
	"fmt"

	"whirlpool"
)

func main() {
	opt := &whirlpool.Options{}
	variants := []whirlpool.ParallelVariant{
		whirlpool.ParSNUCA,
		whirlpool.ParJigsaw,
		whirlpool.ParJigsawPaWS,
		whirlpool.ParWhirlpoolPaWS,
	}
	fmt.Println("pagerank on 16 cores (RMAT graph, 16 partitions):")
	var base whirlpool.Report
	for i, v := range variants {
		r, err := whirlpool.RunParallel("pagerank", v, opt)
		if err != nil {
			panic(err)
		}
		if i == 0 {
			base = r
		}
		fmt.Printf("%-16s cycles=%.1fM (%.3fx)  energy=%.2fmJ (%.3fx)\n",
			v, r.Cycles/1e6, r.Cycles/base.Cycles,
			r.EnergyPJ/1e9, r.EnergyPJ/base.EnergyPJ)
	}
	fmt.Println("\npaper (Fig 13d): J+PaWS improves moderately; W+PaWS gives the big step")
}
