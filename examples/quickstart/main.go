// Quickstart: run the paper's flagship example — Delaunay triangulation
// (dt) with its three manually classified pools — under S-NUCA, Jigsaw,
// and Whirlpool, and print the headline comparison from Sec 2.1.
//
// Experiments are built with whirlpool.New and functional options (see
// docs/api.md); an observer streams each report as it lands.
package main

import (
	"fmt"

	"whirlpool"
)

func main() {
	fmt.Println("dt (Delaunay triangulation) on the 4-core, 25-bank NUCA chip")
	fmt.Println()

	print := whirlpool.WithObserver(func(r whirlpool.Report) {
		fmt.Printf("%-12s  cycles=%.1fM  IPC=%.3f  energy=%.2fmJ (net %.2f, bank %.2f, mem %.2f)\n",
			r.Scheme, r.Cycles/1e6, r.IPC, r.EnergyPJ/1e9,
			r.NetworkEnergyPJ/1e9, r.BankEnergyPJ/1e9, r.MemoryEnergyPJ/1e9)
	})
	run := func(s whirlpool.Scheme) whirlpool.Report {
		r, err := whirlpool.New("delaunay", s, whirlpool.WithScale(0.5), print).Run()
		if err != nil {
			panic(err)
		}
		return r
	}
	snuca := run(whirlpool.SNUCALRU)
	jigsaw := run(whirlpool.Jigsaw)
	whirl := run(whirlpool.Whirlpool)

	fmt.Println()
	fmt.Printf("Whirlpool vs S-NUCA: %+.1f%% performance, %+.1f%% data-movement energy\n",
		100*(snuca.Cycles/whirl.Cycles-1), 100*(whirl.EnergyPJ/snuca.EnergyPJ-1))
	fmt.Printf("Whirlpool vs Jigsaw: %+.1f%% performance, %+.1f%% data-movement energy\n",
		100*(jigsaw.Cycles/whirl.Cycles-1), 100*(whirl.EnergyPJ/jigsaw.EnergyPJ-1))
	fmt.Println("\npaper (Sec 2.1): +19% / -42% vs S-NUCA, +15% / -27% vs Jigsaw")
}
