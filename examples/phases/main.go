// Phase-adaptation example: lbm alternates which of its two grids is hot
// every timestep (Sec 2.2, Fig 6). A static placement cannot help — the
// grids look identical on average — but Whirlpool's dynamic runtime
// re-sizes and re-places the pools every reconfiguration.
package main

import (
	"fmt"

	"whirlpool"
)

func main() {
	opt := &whirlpool.Options{Scale: 0.5}

	jig, err := whirlpool.Run("lbm", whirlpool.Jigsaw, opt)
	check(err)
	whl, err := whirlpool.Run("lbm", whirlpool.Whirlpool, opt)
	check(err)

	fmt.Printf("lbm: Whirlpool vs Jigsaw: %+.1f%% performance, %+.1f%% energy\n",
		100*(jig.Cycles/whl.Cycles-1), 100*(whl.EnergyPJ/jig.EnergyPJ-1))
	fmt.Println("paper (Sec 2.2): +4.8% performance, -12% data movement energy")

	// Show the alternating access pattern the runtime adapts to.
	out, err := whirlpool.Figure("fig6", &whirlpool.FigureOptions{Scale: 0.5})
	check(err)
	fmt.Println()
	fmt.Println(out)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
